// The detector-coverage matrix for seeded fault injection (sim/fault):
// every injectable fault class, armed against a workload that exposes it,
// must be caught by the expected named detector with a structured
// check::FaultReport — no seeded fault may escape as a silent wrong
// answer or an undeclared hang. Also here: FaultPlan spec parsing and
// env arming, the disarmed/armed cost-purity contract, and the
// api-level graceful-degradation path (typed errors, handle poisoning,
// repair / auto-repair retry).

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/catrsm.hpp"
#include "coll/collectives.hpp"
#include "la/generate.hpp"
#include "sim/check/fault_report.hpp"
#include "sim/check/trace.hpp"
#include "sim/comm.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace {

using catrsm::Error;
using catrsm::la::index_t;
using catrsm::la::Matrix;
using catrsm::sim::Buffer;
using catrsm::sim::Comm;
using catrsm::sim::FaultClass;
using catrsm::sim::FaultPlan;
using catrsm::sim::Machine;
using catrsm::sim::Rank;
using catrsm::sim::RunStats;
namespace api = catrsm::api;
namespace check = catrsm::sim::check;
namespace coll = catrsm::coll;

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  bool had_ = false;
  std::string old_;
};

/// `rounds` ring exchanges on one tag, payload contents asserted at every
/// receive — the canonical point-to-point workload of the matrix. A run
/// that completes has provably delivered every payload intact and in
/// order.
void ring_body(Rank& r, int rounds) {
  const int p = r.nprocs();
  const int right = (r.id() + 1) % p;
  const int left = (r.id() + p - 1) % p;
  for (int round = 0; round < rounds; ++round) {
    r.send(right, std::vector<double>{static_cast<double>(r.id()),
                                      static_cast<double>(round)},
           7);
    const Buffer got = r.recv(left, 7);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], static_cast<double>(left));
    EXPECT_EQ(got[1], static_cast<double>(round));
  }
}

void ping_pong_works(Machine& m) {
  const RunStats stats = m.run([](Rank& r) {
    if (r.id() == 0) {
      r.send(1, std::vector<double>{42.0}, 3);
    } else if (r.id() == 1) {
      const Buffer got = r.recv(0, 3);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 42.0);
    }
  });
  EXPECT_EQ(stats.per_rank[0].msgs, 1.0);
}

/// Arm `plan` on `m`, run `body`, and return the FaultReport of the error
/// the run must surface. Asserts at least one injection actually fired.
template <typename Fn>
check::FaultReport expect_detected(Machine& m, const FaultPlan& plan,
                                   Fn body) {
  m.arm_fault(plan);
  check::FaultReport report;
  try {
    m.run(body);
    ADD_FAILURE() << "run completed under armed fault " << plan.describe()
                  << " (injections: " << m.fault_injector()->injections()
                  << ")";
    return report;
  } catch (const std::exception& e) {
    report = check::report_fault(m, e);
  }
  EXPECT_GE(report.injections, 1) << report.to_string();
  EXPECT_TRUE(report.detected()) << report.to_string();
  // Graceful degradation: the machine survives the fault.
  m.disarm_fault();
  ping_pong_works(m);
  return report;
}

// ---------------------------------------------------------------------------
// FaultPlan spec parsing and env arming

TEST(FaultPlanSpec, ParsesClassSeedAndRate) {
  const auto p1 = FaultPlan::parse("corrupt:42");
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->cls, FaultClass::kCorrupt);
  EXPECT_EQ(p1->seed, 42u);
  EXPECT_EQ(p1->rate, 8u);

  const auto p2 = FaultPlan::parse("drop:7:4");
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->cls, FaultClass::kDrop);
  EXPECT_EQ(p2->seed, 7u);
  EXPECT_EQ(p2->rate, 4u);

  for (const char* spec : {"dup:0", "delay:1", "skew:2", "kill:3"})
    EXPECT_TRUE(FaultPlan::parse(spec).has_value()) << spec;
}

TEST(FaultPlanSpec, RejectsMalformedSpecs) {
  for (const char* spec :
       {"", "corrupt", "corrupt:", "banana:1", "corrupt:x", "corrupt:1:0",
        "corrupt:1:x", "corrupt:1:2:3", ":5"})
    EXPECT_FALSE(FaultPlan::parse(spec).has_value()) << spec;
}

TEST(FaultPlanSpec, EnvArmsTheMachine) {
  ScopedEnv v("CATRSM_SIM_FAULT", "corrupt:5");
  Machine m(2);
  ASSERT_NE(m.fault_injector(), nullptr);
  EXPECT_EQ(m.fault_injector()->plan().cls, FaultClass::kCorrupt);
  EXPECT_EQ(m.fault_injector()->plan().seed, 5u);
}

TEST(FaultPlanSpec, MalformedEnvWarnsAndStaysDisarmed) {
  ScopedEnv v("CATRSM_SIM_FAULT", "garbage");
  Machine m(2);
  EXPECT_EQ(m.fault_injector(), nullptr);
  ping_pong_works(m);
}

// ---------------------------------------------------------------------------
// The coverage matrix: (fault class x detector)

TEST(FaultMatrix, DropIsDeclaredAsDeadlock) {
  // Every delivery dropped (rate 1): all receives starve, and the
  // wait-for-graph must DECLARE the stall — a hang is a matrix failure.
  Machine m(4);
  const auto report = expect_detected(
      m, FaultPlan{FaultClass::kDrop, 11, 1},
      [](Rank& r) { ring_body(r, 1); });
  EXPECT_EQ(report.detector, "deadlock-wfg") << report.to_string();
  EXPECT_EQ(report.injected, FaultClass::kDrop);
  EXPECT_NE(report.diagnostics.find("deadlock"), std::string::npos);
}

TEST(FaultMatrix, DropWithLaterTrafficIsASequenceGap) {
  // Rate 2: some deliveries on an edge drop while later ones pass; the
  // receiver then observes a sequence-number gap at the next take.
  bool gap_seen = false;
  for (std::uint64_t seed = 0; seed < 16 && !gap_seen; ++seed) {
    Machine m(4);
    m.arm_fault(FaultPlan{FaultClass::kDrop, seed, 2});
    try {
      m.run([](Rank& r) { ring_body(r, 4); });
    } catch (const std::exception& e) {
      const auto report = check::report_fault(m, e);
      ASSERT_TRUE(report.detected()) << report.to_string();
      if (report.detector == "sequence-check") {
        EXPECT_NE(report.diagnostics.find("gap"), std::string::npos)
            << report.to_string();
        gap_seen = true;
      } else {
        EXPECT_EQ(report.detector, "deadlock-wfg") << report.to_string();
      }
    }
  }
  EXPECT_TRUE(gap_seen) << "no seed in [0, 16) produced a sequence gap";
}

TEST(FaultMatrix, ConsumedDuplicateFailsTheSequenceCheck) {
  // Two rounds on one tag: the duplicated round-1 payload is taken by the
  // round-2 receive, which must fail sequence verification rather than
  // hand back stale (wrong) data.
  Machine m(4);
  const auto report = expect_detected(
      m, FaultPlan{FaultClass::kDuplicate, 3, 1},
      [](Rank& r) { ring_body(r, 2); });
  EXPECT_EQ(report.detector, "sequence-check") << report.to_string();
  EXPECT_EQ(report.injected, FaultClass::kDuplicate);
}

TEST(FaultMatrix, UnconsumedDuplicateTripsTheResidualSweep) {
  // One round: the duplicate is never received, the run "completes" — and
  // the end-of-run mailbox sweep must refuse to call it clean.
  Machine m(4);
  const auto report = expect_detected(
      m, FaultPlan{FaultClass::kDuplicate, 3, 1},
      [](Rank& r) { ring_body(r, 1); });
  EXPECT_EQ(report.detector, "residual-sweep") << report.to_string();
  EXPECT_NE(report.diagnostics.find("residue"), std::string::npos);
}

TEST(FaultMatrix, CorruptionFailsTheLiveChecksum) {
  Machine m(4);
  const auto report = expect_detected(
      m, FaultPlan{FaultClass::kCorrupt, 17, 1},
      [](Rank& r) { ring_body(r, 1); });
  EXPECT_EQ(report.detector, "payload-checksum") << report.to_string();
  EXPECT_EQ(report.injected, FaultClass::kCorrupt);
  EXPECT_GE(report.injections, 1);
  EXPECT_FALSE(report.injection_log.empty());
}

TEST(FaultMatrix, CorruptionIsCaughtByTraceReplayAlone) {
  // With live transport verification off, replaying a clean recorded
  // trace against the armed machine is what exposes the corruption.
  Machine m(4);
  m.set_tracing(true, /*capture_payloads=*/true);
  m.run([](Rank& r) { ring_body(r, 2); });
  const check::Trace trace = m.take_trace();
  m.set_tracing(false);

  FaultPlan plan{FaultClass::kCorrupt, 17, 1};
  plan.verify_transport = false;
  m.arm_fault(plan);
  try {
    (void)check::replay(m, trace);
    FAIL() << "replay accepted corrupted transport";
  } catch (const std::exception& e) {
    const auto report = check::report_fault(m, e);
    EXPECT_EQ(report.detector, "trace-replay") << report.to_string();
    EXPECT_GE(report.injections, 1);
  }
  m.disarm_fault();
  ping_pong_works(m);
}

TEST(FaultMatrix, DelayEverywhereIsDeclaredAsDeadlock) {
  // Rate 1 holds back every delivery; nothing ever flushes the held
  // messages, so the starvation must surface as a DECLARED deadlock.
  Machine m(4);
  const auto report = expect_detected(
      m, FaultPlan{FaultClass::kDelay, 23, 1},
      [](Rank& r) { ring_body(r, 1); });
  EXPECT_EQ(report.detector, "deadlock-wfg") << report.to_string();
  EXPECT_EQ(report.injected, FaultClass::kDelay);
}

TEST(FaultMatrix, DelayReorderingFailsTheSequenceCheck) {
  // Moderate rate over several rounds on one tag: a held-back message
  // flushed behind a later same-tag delivery arrives out of order.
  bool reorder_seen = false;
  for (std::uint64_t seed = 0; seed < 16 && !reorder_seen; ++seed) {
    Machine m(4);
    m.arm_fault(FaultPlan{FaultClass::kDelay, seed, 3});
    try {
      m.run([](Rank& r) { ring_body(r, 4); });
      // A delay that flushed back into order is a correct completion
      // (the in-body payload asserts above prove it) — not an escape.
    } catch (const std::exception& e) {
      const auto report = check::report_fault(m, e);
      ASSERT_TRUE(report.detected()) << report.to_string();
      if (report.detector == "sequence-check") reorder_seen = true;
      else EXPECT_EQ(report.detector, "deadlock-wfg") << report.to_string();
    }
  }
  EXPECT_TRUE(reorder_seen) << "no seed in [0, 16) produced a reorder";
}

TEST(FaultMatrix, SkewedCountsFailTheCollectiveMatcher) {
  Machine m(4);
  m.set_collective_checking(true);
  const auto report = expect_detected(
      m, FaultPlan{FaultClass::kSkewCollective, 29, 1}, [](Rank& r) {
        Comm world = Comm::world(r);
        const coll::Counts counts(4, 2);
        (void)coll::allgather(world, Buffer(std::vector<double>(2, 1.0)),
                              counts);
      });
  EXPECT_EQ(report.detector, "collective-matcher") << report.to_string();
  EXPECT_EQ(report.injected, FaultClass::kSkewCollective);
  EXPECT_NE(report.diagnostics.find("counts disagree"), std::string::npos)
      << report.to_string();
}

TEST(FaultMatrix, SkewedRootFailsTheCollectiveMatcher) {
  Machine m(4);
  m.set_collective_checking(true);
  const auto report = expect_detected(
      m, FaultPlan{FaultClass::kSkewCollective, 31, 1}, [](Rank& r) {
        Comm world = Comm::world(r);
        const coll::Counts counts(4, 2);
        // Every rank holds the full payload so a victim rotated INTO the
        // root role still passes the local size checks — the matcher has
        // to be what catches the disagreement.
        (void)coll::scatter(world, /*root=*/0,
                            Buffer(std::vector<double>(8, 1.0)), counts);
      });
  EXPECT_EQ(report.detector, "collective-matcher") << report.to_string();
  EXPECT_NE(report.diagnostics.find("roots disagree"), std::string::npos)
      << report.to_string();
}

TEST(FaultMatrix, KilledRankSurfacesAsRankAbort) {
  Machine m(4);
  const auto report = expect_detected(
      m, FaultPlan{FaultClass::kKillRank, 37},
      [](Rank& r) { ring_body(r, 4); });
  EXPECT_EQ(report.detector, "rank-abort") << report.to_string();
  EXPECT_EQ(report.injected, FaultClass::kKillRank);
  EXPECT_EQ(report.injections, 1);  // one victim, one death site
  EXPECT_NE(report.diagnostics.find("killed"), std::string::npos);
}

TEST(FaultMatrix, NoSeededFaultEscapesAcrossSeeds) {
  // The matrix's global guarantee, swept over seeds at the default rate:
  // every armed run either completes with every in-body payload assert
  // passing (a fault that landed harmlessly — e.g. a delay flushed back
  // into order — is a correct completion, not an escape) or surfaces an
  // error a named detector claims.
  const FaultClass classes[] = {FaultClass::kDrop,  FaultClass::kDuplicate,
                                FaultClass::kCorrupt, FaultClass::kDelay,
                                FaultClass::kSkewCollective,
                                FaultClass::kKillRank};
  const auto body = [](Rank& r) {
    ring_body(r, 3);
    Comm world = Comm::world(r);
    const coll::Counts counts(4, 2);
    const Buffer got = coll::allgather(
        world,
        Buffer(std::vector<double>{static_cast<double>(r.id()),
                                   static_cast<double>(r.id())}),
        counts);
    ASSERT_EQ(got.size(), 8u);
    for (int w = 0; w < 4; ++w)
      EXPECT_EQ(got[static_cast<std::size_t>(2 * w)],
                static_cast<double>(w));
  };
  for (const FaultClass cls : classes) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      Machine m(4);
      m.set_collective_checking(true);
      m.arm_fault(FaultPlan{cls, seed});
      try {
        m.run(body);
      } catch (const std::exception& e) {
        const auto report = check::report_fault(m, e);
        EXPECT_TRUE(report.detected())
            << "fault escaped as an unclassified error: "
            << report.to_string();
        EXPECT_GE(report.injections, 1) << report.to_string();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cost purity: arming that never fires adds nothing to the model

TEST(FaultCost, ArmedButUnfiredRunMatchesDisarmedBitwise) {
  const auto body = [](Rank& r) {
    ring_body(r, 2);
    Comm world = Comm::world(r);
    (void)coll::allreduce(world, Buffer(std::vector<double>(4, 1.0)));
  };
  Machine plain(4);
  const RunStats off = plain.run(body);

  Machine armed(4);
  // A rate so sparse this workload's sites never fire: the verification
  // stamps ride along, but modeled S/W/F and clocks must not move.
  armed.arm_fault(FaultPlan{FaultClass::kCorrupt, 1, 4000000000u});
  const RunStats on = armed.run(body);
  ASSERT_EQ(armed.fault_injector()->injections(), 0);

  EXPECT_EQ(off.critical_time, on.critical_time);
  ASSERT_EQ(off.per_rank.size(), on.per_rank.size());
  for (std::size_t i = 0; i < off.per_rank.size(); ++i) {
    EXPECT_EQ(off.per_rank[i].msgs, on.per_rank[i].msgs);
    EXPECT_EQ(off.per_rank[i].words, on.per_rank[i].words);
    EXPECT_EQ(off.per_rank[i].flops, on.per_rank[i].flops);
  }
}

// ---------------------------------------------------------------------------
// api-level graceful degradation: typed errors, poisoning, repair

TEST(FaultApi, FaultedRunPoisonsInputsAndRepairRecovers) {
  const index_t n = 32, k = 8;
  const Matrix l = catrsm::la::make_lower_triangular(601, n);
  const Matrix b = catrsm::la::make_rhs(602, n, k);

  api::Context ctx(4);
  auto plan = ctx.plan(api::trsm_op(n, k));
  const api::DistHandle hl = ctx.upload(l, plan->input_layout(0));
  const api::DistHandle hb = ctx.upload(b, plan->input_layout(1));
  const Matrix x_ref = ctx.download(plan->execute_dist(hl, hb).x);

  const std::uint64_t epoch_before = hl.epoch();
  ctx.machine().arm_fault(FaultPlan{FaultClass::kKillRank, 41});
  try {
    (void)plan->execute_dist(hl, hb);
    FAIL() << "execute_dist completed under an armed kill fault";
  } catch (const std::exception& e) {
    const auto report = check::report_fault(ctx.machine(), e);
    EXPECT_EQ(report.detector, "rank-abort") << report.to_string();
  }
  ctx.machine().disarm_fault();

  // The failed run may have left resident blocks half-rewritten: both
  // inputs are poisoned, every read fails fast with a typed error, and
  // the epoch bump invalidates content-keyed caches (diag-inverse reuse).
  EXPECT_TRUE(hl.poisoned());
  EXPECT_TRUE(hb.poisoned());
  EXPECT_NE(hl.epoch(), epoch_before);
  EXPECT_THROW((void)ctx.download(hl), api::PoisonedOperandError);
  EXPECT_THROW((void)plan->execute_dist(hl, hb),
               api::PoisonedOperandError);

  // repair() re-uploads from the recorded source and clears the flag.
  ctx.repair(hl);
  ctx.repair(hb);
  EXPECT_FALSE(hl.poisoned());
  EXPECT_TRUE(ctx.download(hl).equals(l));
  const Matrix x_retry = ctx.download(plan->execute_dist(hl, hb).x);
  EXPECT_TRUE(x_retry.equals(x_ref));
}

TEST(FaultApi, AutoRepairRetriesTransparently) {
  const index_t n = 32, k = 8;
  const Matrix l = catrsm::la::make_lower_triangular(611, n);
  const Matrix b = catrsm::la::make_rhs(612, n, k);

  api::Context ctx(4);
  auto plan = ctx.plan(api::trsm_op(n, k));
  const api::DistHandle hl = ctx.upload(l, plan->input_layout(0));
  const api::DistHandle hb = ctx.upload(b, plan->input_layout(1));
  const Matrix x_ref = ctx.download(plan->execute_dist(hl, hb).x);

  ctx.machine().arm_fault(FaultPlan{FaultClass::kKillRank, 43});
  EXPECT_THROW((void)plan->execute_dist(hl, hb), check::RankKilledError);
  ctx.machine().disarm_fault();
  ASSERT_TRUE(hl.poisoned());

  // With auto-repair on, the retry re-uploads poisoned inputs itself.
  ctx.set_auto_repair(true);
  const Matrix x_retry = ctx.download(plan->execute_dist(hl, hb).x);
  EXPECT_TRUE(x_retry.equals(x_ref));
  EXPECT_FALSE(hl.poisoned());
  EXPECT_FALSE(hb.poisoned());
}

TEST(FaultApi, FaultedFusedBatchPoisonsWholeRunAndRepairRecovers) {
  // A fused batch is ONE simulated run over many panels: a fault during
  // any panel poisons EVERY operand the run touched (the caller cannot
  // know how far the stream got), and repair + rerun recovers bitwise.
  const index_t n = 32, k = 8;
  const int items = 3;
  const Matrix l = catrsm::la::make_lower_triangular(631, n);
  std::vector<Matrix> bs;
  for (int i = 0; i < items; ++i)
    bs.push_back(catrsm::la::make_rhs(640 + static_cast<std::uint64_t>(i),
                                      n, k));

  api::Context ctx(4);
  auto plan = ctx.plan(api::trsm_op(n, k));
  const api::BatchResult ref = plan->execute_batch_fused(l, bs);

  // The handle-level form of the same stream, so poisoning is observable.
  api::Program prog(ctx);
  std::vector<api::DistHandle> handles{
      ctx.upload(l, plan->input_layout(0))};
  const auto na = prog.input(n, n);
  for (const Matrix& b : bs) {
    handles.push_back(ctx.upload(b, plan->input_layout(1)));
    const auto nb = prog.input(n, k);
    prog.mark_output(prog.add(plan, {na, nb}));
  }

  ctx.machine().arm_fault(FaultPlan{FaultClass::kKillRank, 45});
  try {
    (void)prog.run(handles);
    FAIL() << "fused batch completed under an armed kill fault";
  } catch (const std::exception& e) {
    const auto report = check::report_fault(ctx.machine(), e);
    EXPECT_EQ(report.detector, "rank-abort") << report.to_string();
  }
  ctx.machine().disarm_fault();

  // Whole-run poison semantics: the operand AND every panel of the batch.
  for (const api::DistHandle& h : handles) EXPECT_TRUE(h.poisoned());
  EXPECT_THROW((void)prog.run(handles), api::PoisonedOperandError);

  for (const api::DistHandle& h : handles) ctx.repair(h);
  for (const api::DistHandle& h : handles) EXPECT_FALSE(h.poisoned());
  const api::Program::Result retry = prog.run(handles);
  for (int i = 0; i < items; ++i) {
    const std::size_t j = static_cast<std::size_t>(i);
    EXPECT_TRUE(ctx.download(retry.outputs[j])
                    .equals(ref.xs[j]));
  }

  // And the convenience wrapper recovers by itself: fresh uploads per
  // call, so a faulted execute_batch_fused just needs a retry.
  ctx.machine().arm_fault(FaultPlan{FaultClass::kKillRank, 45});
  EXPECT_THROW((void)plan->execute_batch_fused(l, bs), std::exception);
  ctx.machine().disarm_fault();
  const api::BatchResult again = plan->execute_batch_fused(l, bs);
  for (int i = 0; i < items; ++i)
    EXPECT_TRUE(again.xs[static_cast<std::size_t>(i)]
                    .equals(ref.xs[static_cast<std::size_t>(i)]));
}

TEST(FaultApi, RepairWithoutASourceThrowsTyped) {
  const index_t n = 32, k = 8;
  const Matrix l = catrsm::la::make_lower_triangular(621, n);
  const Matrix b = catrsm::la::make_rhs(622, n, k);

  api::Context ctx(4);
  auto plan = ctx.plan(api::trsm_op(n, k));
  const api::DistHandle hl = ctx.upload(l, plan->input_layout(0));
  const api::DistHandle hb = ctx.upload(b, plan->input_layout(1));
  // A run-produced output has no recorded source to re-upload from.
  const api::DistHandle hx = plan->execute_dist(hl, hb).x;
  ctx.machine().handle_store().poison(hx.id());
  EXPECT_THROW(ctx.repair(hx), api::PoisonedOperandError);
  // But an explicit unpoison (the caller vouches) restores readability.
  ctx.machine().handle_store().unpoison(hx.id());
  (void)ctx.download(hx);
}

}  // namespace
