// Tests for the simulated machine: point-to-point semantics, cost counter
// accounting, virtual-clock critical path, and failure propagation.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/kernel/pool.hpp"
#include "sim/comm.hpp"
#include "sim/machine.hpp"

namespace catrsm::sim {
namespace {

TEST(Machine, PingPongDeliversDataAndCharges) {
  Machine m(2);
  RunStats stats = m.run([](Rank& r) {
    if (r.id() == 0) {
      std::vector<double> payload{1.0, 2.0, 3.0};
      r.send(1, payload, 7);
      auto back = r.recv(1, 8);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_DOUBLE_EQ(back[0], 6.0);
    } else {
      auto got = r.recv(0, 7);
      ASSERT_EQ(got.size(), 3u);
      std::vector<double> reply{got[0] + got[1] + got[2]};
      r.send(0, reply, 8);
    }
  });
  // Each rank sent one message and received one.
  EXPECT_DOUBLE_EQ(stats.per_rank[0].msgs, 2.0);
  EXPECT_DOUBLE_EQ(stats.per_rank[1].msgs, 2.0);
  EXPECT_DOUBLE_EQ(stats.per_rank[0].words, 4.0);  // 3 sent + 1 received
  EXPECT_DOUBLE_EQ(stats.per_rank[1].words, 4.0);
}

TEST(Machine, VirtualClockTracksLatencyChain) {
  MachineParams mp;
  mp.alpha = 1.0;
  mp.beta = 0.0;
  mp.gamma = 0.0;
  Machine m(4, mp);
  // A relay 0 -> 1 -> 2 -> 3: three hops, critical path 3 alpha.
  RunStats stats = m.run([](Rank& r) {
    std::vector<double> token{42.0};
    if (r.id() == 0) {
      r.send(1, token, 1);
    } else {
      auto t = r.recv(r.id() - 1, 1);
      if (r.id() < 3) r.send(r.id() + 1, t, 1);
    }
  });
  EXPECT_DOUBLE_EQ(stats.critical_time, 3.0);
}

TEST(Machine, VirtualClockIncludesBandwidthAndFlops) {
  MachineParams mp;
  mp.alpha = 1.0;
  mp.beta = 0.5;
  mp.gamma = 0.25;
  Machine m(2, mp);
  RunStats stats = m.run([](Rank& r) {
    if (r.id() == 0) {
      r.charge_flops(8.0);  // t = 2.0
      std::vector<double> data(4, 1.0);
      r.send(1, data, 1);  // t = 2 + 1 + 2 = 5
    } else {
      auto d = r.recv(0, 1);  // arrives at max(0, 2) + 1 + 2 = 5
      (void)d;
      r.charge_flops(4.0);  // t = 6
    }
  });
  EXPECT_DOUBLE_EQ(stats.critical_time, 6.0);
}

TEST(Machine, SendrecvChargesOneRoundBothSides) {
  Machine m(2);
  RunStats stats = m.run([](Rank& r) {
    std::vector<double> mine(10, static_cast<double>(r.id()));
    auto got = r.sendrecv(1 - r.id(), mine, 3);
    ASSERT_EQ(got.size(), 10u);
    EXPECT_DOUBLE_EQ(got[0], static_cast<double>(1 - r.id()));
  });
  for (const auto& c : stats.per_rank) {
    EXPECT_DOUBLE_EQ(c.msgs, 1.0);
    EXPECT_DOUBLE_EQ(c.words, 10.0);
  }
}

TEST(Machine, ShiftExchangesOnARing) {
  const int p = 5;
  Machine m(p);
  m.run([p](Rank& r) {
    std::vector<double> mine{static_cast<double>(r.id())};
    auto got = r.shift((r.id() + 1) % p, (r.id() + p - 1) % p, mine, 4);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_DOUBLE_EQ(got[0], static_cast<double>((r.id() + p - 1) % p));
  });
}

TEST(Machine, MessagesMatchByTagIndependently) {
  Machine m(2);
  m.run([](Rank& r) {
    if (r.id() == 0) {
      r.send(1, std::vector<double>{1.0}, 10);
      r.send(1, std::vector<double>{2.0}, 20);
    } else {
      // Receive in the opposite order of sending: tags must disambiguate.
      auto b = r.recv(0, 20);
      auto a = r.recv(0, 10);
      EXPECT_DOUBLE_EQ(a[0], 1.0);
      EXPECT_DOUBLE_EQ(b[0], 2.0);
    }
  });
}

TEST(Machine, FifoOrderWithinSameTag) {
  Machine m(2);
  m.run([](Rank& r) {
    if (r.id() == 0) {
      for (int i = 0; i < 5; ++i)
        r.send(1, std::vector<double>{static_cast<double>(i)}, 1);
    } else {
      for (int i = 0; i < 5; ++i) {
        auto v = r.recv(0, 1);
        EXPECT_DOUBLE_EQ(v[0], static_cast<double>(i));
      }
    }
  });
}

TEST(Machine, RankFailurePropagatesWithoutHanging) {
  Machine m(4);
  EXPECT_THROW(m.run([](Rank& r) {
                 if (r.id() == 2) throw Error("injected failure");
                 if (r.id() == 0) (void)r.recv(3, 1);  // would block forever
                 if (r.id() == 3) (void)r.recv(0, 1);
               }),
               Error);
  // The machine must be reusable after a failed run.
  RunStats stats = m.run([](Rank& r) { r.charge_flops(1.0); });
  EXPECT_DOUBLE_EQ(stats.per_rank[0].flops, 1.0);
}

TEST(Machine, SelfSendIsRejected) {
  Machine m(2);
  EXPECT_THROW(m.run([](Rank& r) {
                 r.send(r.id(), std::vector<double>{1.0}, 1);
               }),
               Error);
}

TEST(Machine, CountersResetBetweenRuns) {
  Machine m(2);
  auto job = [](Rank& r) {
    if (r.id() == 0) {
      r.send(1, std::vector<double>(5, 0.0), 1);
    } else {
      (void)r.recv(0, 1);
    }
  };
  RunStats s1 = m.run(job);
  RunStats s2 = m.run(job);
  EXPECT_DOUBLE_EQ(s1.max_words(), s2.max_words());
  EXPECT_DOUBLE_EQ(s1.critical_time, s2.critical_time);
}

TEST(Cost, ArithmeticAndTime) {
  Cost a{1, 10, 100};
  Cost b{2, 20, 200};
  Cost c = a + b;
  EXPECT_DOUBLE_EQ(c.msgs, 3.0);
  EXPECT_DOUBLE_EQ(c.words, 30.0);
  EXPECT_DOUBLE_EQ(c.flops, 300.0);
  MachineParams mp{1.0, 0.1, 0.01};
  EXPECT_DOUBLE_EQ(c.time(mp), 3.0 + 3.0 + 3.0);
}

TEST(Comm, SubsetTranslationAndFibers) {
  Machine m(6);
  m.run([](Rank& r) {
    Comm world = Comm::world(r);
    EXPECT_EQ(world.size(), 6);
    EXPECT_EQ(world.rank(), r.id());
    EXPECT_EQ(world.index_of_world(r.id()), r.id());

    Comm fiber = world.strided_fiber(2);
    EXPECT_EQ(fiber.size(), 3);
    EXPECT_EQ(fiber.world_rank(fiber.rank()), r.id());

    Comm rng = world.range(r.id() < 3 ? 0 : 3, 3);
    EXPECT_EQ(rng.size(), 3);
  });
}

TEST(Comm, NonMembersMayDescribeButNotCommunicate) {
  Machine m(4);
  m.run([](Rank& r) {
    // Every rank builds a comm excluding itself: allowed (layouts over
    // other ranks must be describable), but rank() and traffic throw.
    std::vector<int> members{(r.id() + 1) % 4};
    Comm c(r, members);
    EXPECT_FALSE(c.is_member());
    EXPECT_EQ(c.size(), 1);
    EXPECT_THROW((void)c.rank(), Error);
  });
}

TEST(Scheduler, WorkersPersistAcrossRuns) {
  const int p = 4;
  Machine m(p);
  auto capture = [&] {
    std::vector<std::thread::id> ids(static_cast<std::size_t>(p));
    m.run([&](Rank& r) {
      ids[static_cast<std::size_t>(r.id())] = std::this_thread::get_id();
    });
    return ids;
  };
  const auto first = capture();
  const auto second = capture();
  // Worker i always executes rank i, so the id vectors — not just the id
  // sets — must coincide: the pool is reused, never respawned.
  EXPECT_EQ(first, second);
  EXPECT_EQ(m.scheduler().size(), p);
  EXPECT_EQ(m.scheduler().runs(), 2u);
}

TEST(Scheduler, WorkersPersistAcrossFailedRuns) {
  Machine m(2);
  std::vector<std::thread::id> before(2), after(2);
  m.run([&](Rank& r) {
    before[static_cast<std::size_t>(r.id())] = std::this_thread::get_id();
  });
  EXPECT_THROW(m.run([](Rank&) { throw Error("boom"); }), Error);
  m.run([&](Rank& r) {
    after[static_cast<std::size_t>(r.id())] = std::this_thread::get_id();
  });
  EXPECT_EQ(before, after);
}

TEST(Machine, RankContextKernelCallsDoNotSpawnPoolWorkers) {
  // A la:: call big enough to fan out over the kernel pool from a direct
  // caller must stay single-threaded inside a simulated rank: the
  // scheduler already multiplexes p ranks over the cores, and the
  // sim-context TLS flag tells the pool to run inline.
  la::kernel::ThreadPool::set_threads_for_testing(4);
  const la::index_t n = 544;  // 2n^3 is past the pool's fan-out threshold
  const la::Matrix a = la::make_dense(1201, n, n);
  const la::Matrix b = la::make_dense(1202, n, n);

  // Sanity: the same product from a direct caller does fan out.
  const auto direct_before = la::kernel::ThreadPool::dispatches();
  const la::Matrix reference = la::matmul(a, b);
  ASSERT_GT(la::kernel::ThreadPool::dispatches(), direct_before);

  const auto rank_before = la::kernel::ThreadPool::dispatches();
  Machine m(2);
  m.run([&](Rank& r) {
    const la::Matrix c = la::matmul(a, b);
    ASSERT_TRUE(c.equals(reference)) << "rank " << r.id();
  });
  EXPECT_EQ(la::kernel::ThreadPool::dispatches(), rank_before)
      << "a simulated rank fanned out over the kernel pool";
  la::kernel::ThreadPool::set_threads_for_testing(0);
}

TEST(Machine, DeterministicAcrossRuns) {
  Machine m(8);
  auto job = [](Rank& r) {
    Comm world = Comm::world(r);
    std::vector<double> v{static_cast<double>(r.id()) * 1.5};
    for (int i = 0; i < 3; ++i) {
      v = r.sendrecv(r.id() ^ 1, std::move(v), 9).to_vector();
      v[0] += 0.25;
    }
  };
  RunStats s1 = m.run(job);
  RunStats s2 = m.run(job);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(s1.per_rank[i].msgs, s2.per_rank[i].msgs);
    EXPECT_DOUBLE_EQ(s1.per_rank[i].words, s2.per_rank[i].words);
  }
}

}  // namespace
}  // namespace catrsm::sim
