// Mixed-precision triangular solve: the f32 blocked solve must be
// correct to f32 accuracy on its own, and the refined solve must land
// within a small constant of the pure-f64 residual — "fast path, full
// accuracy" is the whole point of the precision envelope.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "api/catrsm.hpp"
#include "la/generate.hpp"
#include "la/matrix.hpp"
#include "la/mixed.hpp"
#include "la/norms.hpp"
#include "la/trsm.hpp"

namespace catrsm::la {
namespace {

TEST(Mixed, F32SolveIsCorrectToF32Accuracy) {
  for (const index_t n : {index_t{7}, index_t{64}, index_t{129},
                          index_t{257}}) {
    const index_t k = 33;
    const Matrix l = make_lower_triangular(1000 + n, n);
    const Matrix b = make_dense(2000 + n, n, k);

    // f64 reference solve.
    Matrix x64 = b;
    trsm_left(Uplo::kLower, Diag::kNonUnit, l, x64);

    // f32 solve of the same system.
    std::vector<float> lf(static_cast<std::size_t>(n) * n);
    std::vector<float> bf(static_cast<std::size_t>(n) * k);
    for (std::size_t i = 0; i < lf.size(); ++i)
      lf[i] = static_cast<float>(l.data()[i]);
    for (std::size_t i = 0; i < bf.size(); ++i)
      bf[i] = static_cast<float>(b.data()[i]);
    trsm_left_f32(Uplo::kLower, Diag::kNonUnit, n, k, lf.data(), n, bf.data(),
                  k);

    double maxrel = 0.0;
    for (index_t i = 0; i < n; ++i)
      for (index_t j = 0; j < k; ++j) {
        const double den = std::max(1.0, std::abs(x64(i, j)));
        maxrel = std::max(
            maxrel,
            std::abs(static_cast<double>(
                         bf[static_cast<std::size_t>(i * k + j)]) -
                     x64(i, j)) / den);
      }
    // Well inside f32 forward-error territory for these benign triangles,
    // far outside anything a broken index computation could produce.
    EXPECT_LT(maxrel, 5e-3) << "n=" << n;
  }
}

TEST(Mixed, F32SolveUpperTriangle) {
  const index_t n = 129, k = 17;
  const Matrix u = make_upper_triangular(31, n);
  const Matrix b = make_dense(32, n, k);
  Matrix x64 = b;
  trsm_left(Uplo::kUpper, Diag::kNonUnit, u, x64);

  std::vector<float> uf(static_cast<std::size_t>(n) * n);
  std::vector<float> bf(static_cast<std::size_t>(n) * k);
  for (std::size_t i = 0; i < uf.size(); ++i)
    uf[i] = static_cast<float>(u.data()[i]);
  for (std::size_t i = 0; i < bf.size(); ++i)
    bf[i] = static_cast<float>(b.data()[i]);
  trsm_left_f32(Uplo::kUpper, Diag::kNonUnit, n, k, uf.data(), n, bf.data(),
                k);

  double maxrel = 0.0;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < k; ++j) {
      const double den = std::max(1.0, std::abs(x64(i, j)));
      maxrel = std::max(
          maxrel, std::abs(static_cast<double>(
                               bf[static_cast<std::size_t>(i * k + j)]) -
                           x64(i, j)) / den);
    }
  EXPECT_LT(maxrel, 5e-3);
}

TEST(Mixed, RefinementReachesF64LevelResidual) {
  for (const index_t n : {index_t{129}, index_t{257}, index_t{512}}) {
    const index_t k = 64;
    const Matrix l = make_lower_triangular(4000 + n, n);
    const Matrix b = make_dense(5000 + n, n, k);

    Matrix x64 = b;
    trsm_left(Uplo::kLower, Diag::kNonUnit, l, x64);
    const double res64 = trsm_residual(l, x64, b);

    Matrix xr = b;
    const RefineStats rs =
        trsm_refined(Uplo::kLower, Diag::kNonUnit, l, xr, 8);

    const double res_ref = trsm_residual(l, xr, b);
    EXPECT_TRUE(rs.converged) << "n=" << n;
    EXPECT_GE(rs.iterations, 1) << "n=" << n;
    // The acceptance bar from the issue: within 10x of the pure-f64
    // residual. Measured ratios sit around 1.2-1.5x; 10x leaves room
    // for unlucky rounding without ever passing a broken refinement.
    EXPECT_LE(res_ref, 10.0 * res64 + 1e-300) << "n=" << n
                                              << " res64=" << res64
                                              << " refined=" << res_ref;
    // The reported residual is computed with a different formula (TRMM
    // inside the loop vs GEMM here), so at the rounding floor the two
    // only agree to within a small factor — check the magnitude, not
    // the digits.
    EXPECT_GT(rs.residual, 0.0) << "n=" << n;
    EXPECT_LE(rs.residual, 50.0 * res64 + 1e-300) << "n=" << n;
  }
}

TEST(Mixed, RefinementHandlesUnitDiagonal) {
  const index_t n = 257, k = 32;
  Matrix l = make_lower_triangular(61, n);
  // Stored diagonal is junk for a unit solve; make it clearly non-unit
  // but O(1) — a wildly scaled junk diagonal would only stress the
  // cancellation in the residual patch, not the solve being tested.
  for (index_t i = 0; i < n; ++i)
    l(i, i) = 2.5 + 0.01 * static_cast<double>(i);
  const Matrix b = make_dense(62, n, k);

  Matrix x64 = b;
  trsm_left(Uplo::kLower, Diag::kUnit, l, x64);

  Matrix xr = b;
  const RefineStats rs = trsm_refined(Uplo::kLower, Diag::kUnit, l, xr, 8);
  EXPECT_TRUE(rs.converged);

  // Residual against the unit-diagonal operator, computed directly.
  Matrix r64 = b;
  Matrix rref = b;
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < k; ++j) {
      double s64 = x64(i, j);
      double sref = xr(i, j);
      for (index_t t = 0; t < i; ++t) {
        s64 += l(i, t) * x64(t, j);
        sref += l(i, t) * xr(t, j);
      }
      r64(i, j) -= s64;
      rref(i, j) -= sref;
    }
  const double f64n = frobenius_norm(r64);
  const double refn = frobenius_norm(rref);
  EXPECT_LE(refn, 10.0 * f64n + 1e-300);
}

TEST(Mixed, EmptyAndTinyProblems) {
  Matrix l0(0, 0);
  Matrix b0(0, 5);
  const RefineStats rs0 =
      trsm_refined(Uplo::kLower, Diag::kNonUnit, l0, b0, 4);
  EXPECT_TRUE(rs0.converged);
  EXPECT_EQ(rs0.iterations, 0);

  const Matrix l1 = make_lower_triangular(71, 1);
  const Matrix b1 = make_dense(72, 1, 1);
  Matrix x1 = b1;
  const RefineStats rs1 =
      trsm_refined(Uplo::kLower, Diag::kNonUnit, l1, x1, 4);
  EXPECT_TRUE(rs1.converged);
  EXPECT_NEAR(x1(0, 0), b1(0, 0) / l1(0, 0), 1e-12);
}

TEST(Mixed, PlanApiMixedPrecisionSolve) {
  const index_t n = 129, k = 16;
  const Matrix l = make_lower_triangular(81, n);
  const Matrix b = make_dense(82, n, k);

  api::Context ctx(1);
  api::TrsmSpec spec;
  spec.mixed_precision = true;
  auto plan = ctx.plan(api::trsm_op(n, k, spec));
  const api::ExecResult r = plan->execute(l, b);

  Matrix ref = b;
  trsm_left(Uplo::kLower, Diag::kNonUnit, l, ref);
  EXPECT_LT(max_abs_diff(r.x, ref), 1e-9);
  EXPECT_LT(trsm_residual(l, r.x, b), 1e-14);
}

TEST(Mixed, PlanApiMixedPrecisionUpperVariant) {
  // Upper solves reach the mixed branch through the same index-reversal
  // normalization as the distributed kernels.
  const index_t n = 96, k = 8;
  const Matrix u = make_upper_triangular(83, n);
  const Matrix b = make_dense(84, n, k);

  api::Context ctx(1);
  api::TrsmSpec spec;
  spec.uplo = Uplo::kUpper;
  spec.mixed_precision = true;
  auto plan = ctx.plan(api::trsm_op(n, k, spec));
  const api::ExecResult r = plan->execute(u, b);

  Matrix ref = b;
  trsm_left(Uplo::kUpper, Diag::kNonUnit, u, ref);
  EXPECT_LT(max_abs_diff(r.x, ref), 1e-9);
}

}  // namespace
}  // namespace catrsm::la
