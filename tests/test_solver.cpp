// Integration tests for the public solve() driver: every algorithm,
// automatic configuration, and end-to-end residuals.

#include <gtest/gtest.h>

#include "la/generate.hpp"
#include "la/norms.hpp"
#include "trsm/solver.hpp"

namespace catrsm::trsm {
namespace {

using la::Matrix;
using la::index_t;

struct DriverCase {
  index_t n, k;
  int p;
  model::Algorithm algo;
};

class DriverSweep : public ::testing::TestWithParam<DriverCase> {};

TEST_P(DriverSweep, SolvesWithTinyResidual) {
  const DriverCase tc = GetParam();
  const Matrix l = la::make_lower_triangular(81, tc.n);
  const Matrix b = la::make_rhs(82, tc.n, tc.k);
  SolveOptions opts;
  opts.force_algorithm = true;
  opts.algorithm = tc.algo;
  const SolveResult r = solve(l, b, tc.p, opts);
  EXPECT_LT(r.residual, 1e-12)
      << "n=" << tc.n << " k=" << tc.k << " p=" << tc.p << " algo="
      << model::algorithm_name(tc.algo);
  const Matrix ref = la::solve_lower(l, b);
  EXPECT_LT(la::max_abs_diff(r.x, ref), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, DriverSweep,
    ::testing::Values(
        DriverCase{32, 8, 8, model::Algorithm::kIterative},
        DriverCase{32, 8, 8, model::Algorithm::kRecursive},
        DriverCase{32, 8, 8, model::Algorithm::kTrsm2D},
        DriverCase{32, 8, 8, model::Algorithm::kTrsv1D},
        DriverCase{33, 7, 6, model::Algorithm::kIterative},
        DriverCase{33, 7, 6, model::Algorithm::kRecursive},
        DriverCase{33, 7, 6, model::Algorithm::kTrsm2D},
        DriverCase{48, 1, 4, model::Algorithm::kTrsv1D},
        DriverCase{16, 48, 16, model::Algorithm::kIterative},
        DriverCase{16, 48, 16, model::Algorithm::kRecursive},
        DriverCase{64, 16, 1, model::Algorithm::kIterative},
        DriverCase{64, 16, 1, model::Algorithm::kRecursive}));

TEST(Solver, AutoConfigurationSolves) {
  const index_t n = 48, k = 12;
  const Matrix l = la::make_lower_triangular(83, n);
  const Matrix b = la::make_rhs(84, n, k);
  const SolveResult r = solve(l, b, 8);
  EXPECT_LT(r.residual, 1e-12);
  EXPECT_EQ(r.config.algorithm, model::Algorithm::kIterative);
  EXPECT_EQ(r.config.p1 * r.config.p1 * r.config.p2, 8);
}

TEST(Solver, SingleVectorPrefersRing) {
  const index_t n = 32;
  const Matrix l = la::make_lower_triangular(85, n);
  const Matrix b = la::make_rhs(86, n, 1);
  const SolveResult r = solve(l, b, 4);
  EXPECT_EQ(r.config.algorithm, model::Algorithm::kTrsv1D);
  EXPECT_LT(r.residual, 1e-12);
}

TEST(Solver, StatsArePopulated) {
  const index_t n = 32, k = 8;
  const Matrix l = la::make_lower_triangular(87, n);
  const Matrix b = la::make_rhs(88, n, k);
  const SolveResult r = solve(l, b, 8);
  EXPECT_EQ(r.stats.per_rank.size(), 8u);
  EXPECT_GT(r.stats.max_flops(), 0.0);
  EXPECT_GT(r.stats.max_words(), 0.0);
  EXPECT_GT(r.stats.critical_time, 0.0);
}

TEST(Solver, MachineReuseAcrossSolves) {
  sim::Machine machine(4);
  const Matrix l = la::make_lower_triangular(89, 16);
  const Matrix b1 = la::make_rhs(90, 16, 4);
  const Matrix b2 = la::make_rhs(91, 16, 4);
  const SolveResult r1 = solve_on(machine, l, b1);
  const SolveResult r2 = solve_on(machine, l, b2);
  EXPECT_LT(r1.residual, 1e-12);
  EXPECT_LT(r2.residual, 1e-12);
}

TEST(Solver, SolveOnSharesThePerMachinePlanCache) {
  // Regression: solve_on used to build a fresh api::Context per call,
  // which made the plan cache (and the diagonal-inverse reuse behind it)
  // useless across repeated solves on the same machine.
  sim::Machine machine(8);
  const index_t n = 32, k = 8;
  const Matrix l = la::make_lower_triangular(95, n);
  const Matrix b1 = la::make_rhs(96, n, k);
  const Matrix b2 = la::make_rhs(97, n, k);
  SolveOptions opts;
  opts.force_algorithm = true;
  opts.algorithm = model::Algorithm::kIterative;

  api::Context& ctx = context_on(machine);
  EXPECT_EQ(&context_on(machine), &ctx);  // stable per machine
  const api::CacheStats before = ctx.cache_stats();
  const SolveResult r1 = solve_on(machine, l, b1, opts);
  const SolveResult r2 = solve_on(machine, l, b2, opts);
  const api::CacheStats after = ctx.cache_stats();
  EXPECT_EQ(after.misses - before.misses, 1u);  // planned once...
  EXPECT_GE(after.hits - before.hits, 1u);      // ...hit on the second call
  // The shared plan reuses the inverted diagonal blocks for the same L.
  EXPECT_EQ(r1.stats.phase_max.count("inversion"), 1u);
  EXPECT_EQ(r2.stats.phase_max.count("inversion"), 0u);
  EXPECT_LT(r2.residual, 1e-12);
}

TEST(Solver, RejectsNonSquareL) {
  const Matrix l(4, 5);
  const Matrix b(4, 2);
  EXPECT_THROW(solve(l, b, 2), Error);
}

TEST(Solver, NblocksOverrideRespected) {
  const index_t n = 32, k = 8;
  const Matrix l = la::make_lower_triangular(92, n);
  const Matrix b = la::make_rhs(93, n, k);
  SolveOptions opts;
  opts.force_algorithm = true;
  opts.algorithm = model::Algorithm::kIterative;
  opts.nblocks = 4;
  const SolveResult r = solve(l, b, 8, opts);
  EXPECT_EQ(r.config.nblocks, 4);
  EXPECT_LT(r.residual, 1e-12);
}

TEST(Solver, IdentityMatrixIsExact) {
  const index_t n = 16, k = 4;
  const Matrix l = Matrix::identity(n);
  const Matrix b = la::make_rhs(94, n, k);
  const SolveResult r = solve(l, b, 4);
  EXPECT_LT(la::max_abs_diff(r.x, b), 1e-14);
}

}  // namespace
}  // namespace catrsm::trsm
