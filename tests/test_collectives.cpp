// Collective correctness and — crucially — cost-signature tests: the
// measured S and W of every collective must match the paper's Section
// II-C1 table, because every downstream TRSM cost claim builds on them.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>
#include <numeric>

#include "coll/alltoall.hpp"
#include "coll/collectives.hpp"
#include "sim/machine.hpp"
#include "support/check.hpp"

namespace catrsm::coll {
namespace {

using sim::Comm;
using sim::Machine;
using sim::Rank;
using sim::RunStats;

// All group sizes exercised: powers of two and awkward sizes.
class CollectiveGroup : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(GroupSizes, CollectiveGroup,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16));

TEST_P(CollectiveGroup, AllgatherConcatenatesInRankOrder) {
  const int p = GetParam();
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    // Rank i contributes i+1 values, all equal to i.
    Counts counts(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) counts[i] = static_cast<std::size_t>(i + 1);
    Buf mine(static_cast<std::size_t>(r.id() + 1),
             static_cast<double>(r.id()));
    Buffer all = allgather(world, std::move(mine), counts);
    std::size_t pos = 0;
    for (int i = 0; i < p; ++i)
      for (int c = 0; c <= i; ++c)
        ASSERT_DOUBLE_EQ(all[pos++], static_cast<double>(i));
    ASSERT_EQ(pos, all.size());
  });
}

TEST_P(CollectiveGroup, AllgatherCostMatchesPaperFormula) {
  const int p = GetParam();
  if (p == 1) return;
  const std::size_t each = 24;
  Machine m(p);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Buf mine(each, 1.0);
    (void)allgather_equal(world, mine);
  });
  // S = ceil(log2 p) rounds exactly; W = n - n/p received words
  // (n = total gathered size), counted once per round as max(sent, recv).
  const double total = static_cast<double>(each * p);
  EXPECT_DOUBLE_EQ(stats.max_msgs(), ilog2_ceil(p));
  if (is_pow2(p)) {
    EXPECT_DOUBLE_EQ(stats.max_words(), total - each);
  } else {
    EXPECT_LE(stats.max_words(), total);  // Bruck may be mildly asymmetric
    EXPECT_GE(stats.max_words(), total - each - 1);
  }
}

TEST_P(CollectiveGroup, ReduceScatterSumsAndSplits) {
  const int p = GetParam();
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    Counts counts(static_cast<std::size_t>(p));
    std::size_t total = 0;
    for (int i = 0; i < p; ++i) {
      counts[i] = static_cast<std::size_t>(2 * i + 1);
      total += counts[i];
    }
    // Rank r contributes full[j] = r + j; segment sums are p*j + p(p-1)/2.
    Buf full(total);
    for (std::size_t j = 0; j < total; ++j)
      full[j] = static_cast<double>(r.id()) + static_cast<double>(j);
    Buffer seg = reduce_scatter(world, std::move(full), counts);
    ASSERT_EQ(seg.size(), counts[static_cast<std::size_t>(r.id())]);
    std::size_t off = 0;
    for (int i = 0; i < r.id(); ++i) off += counts[i];
    const double rank_sum = static_cast<double>(p) * (p - 1) / 2.0;
    for (std::size_t c = 0; c < seg.size(); ++c) {
      const double expect =
          static_cast<double>(p) * static_cast<double>(off + c) + rank_sum;
      ASSERT_DOUBLE_EQ(seg[c], expect);
    }
  });
}

TEST_P(CollectiveGroup, ReduceScatterCostPow2Exact) {
  const int p = GetParam();
  if (!is_pow2(p) || p == 1) return;
  const std::size_t each = 16;
  Machine m(p);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Buf full(each * static_cast<std::size_t>(p), 1.0);
    (void)reduce_scatter(world, full,
                         Counts(static_cast<std::size_t>(p), each));
  });
  const double total = static_cast<double>(each * p);
  EXPECT_DOUBLE_EQ(stats.max_msgs(), ilog2_exact(p));
  EXPECT_DOUBLE_EQ(stats.max_words(), total - each);
  EXPECT_DOUBLE_EQ(stats.max_flops(), total - each);
}

TEST_P(CollectiveGroup, ScatterDistributesBlocks) {
  const int p = GetParam();
  Machine m(p);
  for (int root = 0; root < p; root += std::max(1, p / 3)) {
    m.run([p, root](Rank& r) {
      Comm world = Comm::world(r);
      Counts counts(static_cast<std::size_t>(p));
      std::size_t total = 0;
      for (int i = 0; i < p; ++i) {
        counts[i] = static_cast<std::size_t>((i % 3) + 1);
        total += counts[i];
      }
      Buf all;
      if (r.id() == root) {
        for (int i = 0; i < p; ++i)
          for (std::size_t c = 0; c < counts[i]; ++c)
            all.push_back(static_cast<double>(i * 100 + static_cast<int>(c)));
      }
      Buffer mine = scatter(world, root, std::move(all), counts);
      ASSERT_EQ(mine.size(), counts[static_cast<std::size_t>(r.id())]);
      for (std::size_t c = 0; c < mine.size(); ++c)
        ASSERT_DOUBLE_EQ(mine[c],
                         static_cast<double>(r.id() * 100 +
                                             static_cast<int>(c)));
    });
  }
}

TEST_P(CollectiveGroup, GatherInvertsScatter) {
  const int p = GetParam();
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    const int root = p - 1;
    Counts counts(static_cast<std::size_t>(p), 3);
    Buf mine(3, static_cast<double>(r.id()));
    Buffer all = gather(world, root, std::move(mine), counts);
    if (r.id() == root) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(3 * p));
      for (int i = 0; i < p; ++i)
        for (int c = 0; c < 3; ++c)
          ASSERT_DOUBLE_EQ(all[static_cast<std::size_t>(3 * i + c)],
                           static_cast<double>(i));
    } else {
      ASSERT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectiveGroup, ScatterGatherCostLogLatency) {
  const int p = GetParam();
  if (p == 1) return;
  const std::size_t each = 32;
  Machine m(p);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Counts counts(static_cast<std::size_t>(p), each);
    Buf all;
    if (r.id() == 0) all.assign(each * static_cast<std::size_t>(p), 1.0);
    Buffer mine = scatter(world, 0, std::move(all), counts);
    (void)gather(world, 0, std::move(mine), counts);
  });
  const double total = static_cast<double>(each * p);
  // Root does ceil(log p) sends in scatter plus ceil(log p) recvs in
  // gather, moving (n - n/p) words each way.
  EXPECT_DOUBLE_EQ(stats.max_msgs(), 2.0 * ilog2_ceil(p));
  EXPECT_DOUBLE_EQ(stats.max_words(), 2.0 * (total - each));
}

TEST_P(CollectiveGroup, BcastDeliversEverywhere) {
  const int p = GetParam();
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    const int root = p / 2;
    const std::size_t count = 13;
    Buf data;
    if (r.id() == root)
      for (std::size_t i = 0; i < count; ++i)
        data.push_back(static_cast<double>(i) * 0.5);
    Buffer out = bcast(world, root, std::move(data), count);
    ASSERT_EQ(out.size(), count);
    for (std::size_t i = 0; i < count; ++i)
      ASSERT_DOUBLE_EQ(out[i], static_cast<double>(i) * 0.5);
  });
}

TEST_P(CollectiveGroup, BcastCostTwoLogRounds) {
  const int p = GetParam();
  if (p == 1) return;
  const std::size_t count = 64;
  Machine m(p);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Buf data;
    if (r.id() == 0) data.assign(count, 2.0);
    (void)bcast(world, 0, data, count);
  });
  EXPECT_DOUBLE_EQ(stats.max_msgs(), 2.0 * ilog2_ceil(p));
  // W <= 2n (scatter moves ~n at the root, allgather ~n at every rank).
  EXPECT_LE(stats.max_words(), 2.0 * static_cast<double>(count) + 1);
}

TEST_P(CollectiveGroup, AllreduceSumsEverywhere) {
  const int p = GetParam();
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    Buf full(10);
    for (std::size_t j = 0; j < full.size(); ++j)
      full[j] = static_cast<double>(r.id() + 1) * static_cast<double>(j);
    Buffer sum = allreduce(world, std::move(full));
    const double ranks_total = static_cast<double>(p) * (p + 1) / 2.0;
    for (std::size_t j = 0; j < sum.size(); ++j)
      ASSERT_DOUBLE_EQ(sum[j], ranks_total * static_cast<double>(j));
  });
}

TEST_P(CollectiveGroup, ReduceSumsAtRootOnly) {
  const int p = GetParam();
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    Buf full(7, 1.0);
    Buffer sum = reduce(world, 0, std::move(full));
    if (r.id() == 0) {
      ASSERT_EQ(sum.size(), 7u);
      for (double v : sum) ASSERT_DOUBLE_EQ(v, static_cast<double>(p));
    } else {
      ASSERT_TRUE(sum.empty());
    }
  });
}

TEST_P(CollectiveGroup, AllreduceCostTwoLogRounds) {
  const int p = GetParam();
  if (!is_pow2(p) || p == 1) return;
  const std::size_t count = 32;
  Machine m(p);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Buf full(count, 1.0);
    (void)allreduce(world, full);
  });
  const double n = static_cast<double>(count);
  EXPECT_DOUBLE_EQ(stats.max_msgs(), 2.0 * ilog2_exact(p));
  EXPECT_DOUBLE_EQ(stats.max_words(), 2.0 * (n - n / p));
  EXPECT_DOUBLE_EQ(stats.max_flops(), n - n / p);
}

TEST_P(CollectiveGroup, BarrierLatencyOnly) {
  const int p = GetParam();
  if (p == 1) return;
  Machine m(p);
  RunStats stats = m.run([](Rank& r) {
    Comm world = Comm::world(r);
    barrier(world);
  });
  EXPECT_DOUBLE_EQ(stats.max_msgs(), ilog2_ceil(p));
  EXPECT_DOUBLE_EQ(stats.max_words(), 0.0);
}

TEST_P(CollectiveGroup, AlltoallvBruckRoutesEverything) {
  const int p = GetParam();
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    std::vector<Buf> to_send(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      // Variable sizes: rank s sends (s + d) % 3 + 1 values "s*1000 + d".
      const int cnt = (r.id() + d) % 3 + 1;
      to_send[d].assign(static_cast<std::size_t>(cnt),
                        static_cast<double>(r.id() * 1000 + d));
    }
    auto got = alltoallv(world, std::move(to_send), AlltoallAlgo::kBruck);
    for (int s = 0; s < p; ++s) {
      const int cnt = (s + r.id()) % 3 + 1;
      ASSERT_EQ(got[s].size(), static_cast<std::size_t>(cnt));
      for (double v : got[s])
        ASSERT_DOUBLE_EQ(v, static_cast<double>(s * 1000 + r.id()));
    }
  });
}

TEST_P(CollectiveGroup, AlltoallvDirectMatchesBruck) {
  const int p = GetParam();
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    auto make = [&] {
      std::vector<Buf> to_send(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d)
        to_send[d].assign(2, static_cast<double>(r.id() * 10 + d));
      return to_send;
    };
    auto a = alltoallv(world, make(), AlltoallAlgo::kBruck);
    auto b = alltoallv(world, make(), AlltoallAlgo::kDirect);
    for (int s = 0; s < p; ++s)
      ASSERT_EQ(a[s].to_vector(), b[s].to_vector());
  });
}

TEST(Alltoallv, BruckLatencyIsLogDirectIsLinear) {
  const int p = 16;
  const std::size_t each = 8;
  Machine m(p);
  auto job = [&](AlltoallAlgo algo) {
    return m.run([&, algo](Rank& r) {
      Comm world = Comm::world(r);
      std::vector<Buf> to_send(static_cast<std::size_t>(p));
      for (int d = 0; d < p; ++d) to_send[d].assign(each, 1.0);
      (void)alltoallv(world, std::move(to_send), algo);
    });
  };
  RunStats bruck = job(AlltoallAlgo::kBruck);
  RunStats direct = job(AlltoallAlgo::kDirect);

  EXPECT_DOUBLE_EQ(bruck.max_msgs(), ilog2_exact(p));
  EXPECT_DOUBLE_EQ(direct.max_msgs(), p - 1);
  // Bruck words ~ (total/2) log p plus 3-word headers; direct is minimal.
  const double total = static_cast<double>(each) * (p - 1);
  EXPECT_DOUBLE_EQ(direct.max_words(), total);
  EXPECT_GT(bruck.max_words(), total);
  EXPECT_LE(bruck.max_words(),
            (static_cast<double>(each) + 3.0) * p / 2.0 * ilog2_exact(p));
}

TEST(Collectives, EvenCountsCoverTotal) {
  const Counts c = even_counts(10, 4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(std::accumulate(c.begin(), c.end(), std::size_t{0}), 10u);
  EXPECT_EQ(c[0], 3u);
  EXPECT_EQ(c[3], 2u);
}

TEST(Collectives, SizeMismatchThrows) {
  Machine m(2);
  EXPECT_THROW(m.run([](Rank& r) {
                 Comm world = Comm::world(r);
                 Buf mine(3, 0.0);
                 Counts counts{2, 2};  // lies about my size
                 (void)allgather(world, mine, counts);
               }),
               Error);
}

TEST(Collectives, SubcommunicatorCollectivesAreIndependent) {
  // Two disjoint halves run allreduce concurrently; sums must not mix.
  const int p = 8;
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    const int half = r.id() < p / 2 ? 0 : 1;
    Comm mine = world.range(half * p / 2, p / 2);
    Buf full{static_cast<double>(half + 1)};
    Buffer sum = allreduce(mine, std::move(full));
    ASSERT_DOUBLE_EQ(sum[0], static_cast<double>((half + 1) * p / 2));
  });
}

TEST(CollTags, DistinctGroupsGetDistinctTags) {
  Machine m(4);
  m.run([](Rank& r) {
    Comm world = Comm::world(r);
    Comm sub = world.range(0, 2);
    // Same op, different groups: tags must differ so nested collectives
    // cannot cross-match; same group: identical tag on every member.
    EXPECT_NE(coll_tag(CollOp::kScatter, world),
              coll_tag(CollOp::kScatter, sub));
    EXPECT_EQ(coll_tag(CollOp::kScatter, world),
              kTagBase + static_cast<int>(CollOp::kScatter) * kEpochSpace +
                  static_cast<int>(world.epoch() %
                                   static_cast<std::uint64_t>(kEpochSpace)));
    // Ops occupy disjoint tag bands on the same group.
    EXPECT_NE(coll_tag(CollOp::kScatter, world),
              coll_tag(CollOp::kGather, world));
    // All collective tags sit above the user point-to-point tag space.
    EXPECT_GE(coll_tag(CollOp::kAllgather, sub), kTagBase);
  });
}

TEST(CollTags, NestedScattersOnOverlappingGroupsDoNotCrossMatch) {
  // Regression for the communicator-epoch tags. Rank 0 scatters on the
  // subgroup {0, 1} (root 0: it only SENDS, so it finishes immediately)
  // and then joins a world scatter rooted at rank 2, where it *forwards*
  // a block to rank 1. Rank 1 runs the two scatters in the OPPOSITE
  // order. The (0 -> 1) wire thus carries rank 0's subgroup message
  // before its world message, while rank 1 receives world-first — with
  // op-only tags the world receive would FIFO-match the 5-word subgroup
  // payload (size corruption); the epoch in the tag keeps the streams
  // apart.
  const int p = 4;
  Machine m(p);
  m.run([p](Rank& r) {
    Comm world = Comm::world(r);
    const Counts wcounts{2, 3, 4, 1};
    Buf wall;
    if (r.id() == 2)
      for (int b = 0; b < p; ++b)
        for (std::size_t c = 0; c < wcounts[static_cast<std::size_t>(b)]; ++c)
          wall.push_back(static_cast<double>(1000 * b) +
                         static_cast<double>(c));

    auto run_world = [&] {
      Buffer mine = scatter(world, /*root=*/2, std::move(wall), wcounts);
      ASSERT_EQ(mine.size(), wcounts[static_cast<std::size_t>(r.id())]);
      for (std::size_t c = 0; c < mine.size(); ++c)
        ASSERT_DOUBLE_EQ(mine[c], static_cast<double>(1000 * r.id()) +
                                      static_cast<double>(c));
    };
    auto run_sub = [&] {
      Comm sub = world.range(0, 2);
      const Counts scounts{4, 5};
      Buf sall;
      if (r.id() == 0)
        for (int b = 0; b < 2; ++b)
          for (std::size_t c = 0; c < scounts[static_cast<std::size_t>(b)];
               ++c)
            sall.push_back(static_cast<double>(-100 * b) -
                           static_cast<double>(c));
      Buffer mine = scatter(sub, /*root=*/0, std::move(sall), scounts);
      ASSERT_EQ(mine.size(), scounts[static_cast<std::size_t>(r.id())]);
      for (std::size_t c = 0; c < mine.size(); ++c)
        ASSERT_DOUBLE_EQ(mine[c], static_cast<double>(-100 * r.id()) -
                                      static_cast<double>(c));
    };

    if (r.id() == 0) {
      run_sub();    // eager send to rank 1, completes without receiving
      run_world();  // then forwards rank 1's world block
    } else if (r.id() == 1) {
      run_world();  // world block arrives AFTER the subgroup payload
      run_sub();
    } else {
      run_world();
    }
  });
}

TEST(CollTags, ConcurrentRowAndColumnFiberCollectives) {
  // A 2x2 grid runs an allgather across every row fiber and then across
  // every column fiber, with deliberately different payload sizes per
  // phase. The fibers overlap (each rank sits in one row and one column),
  // and the real OS threads interleave the two phases arbitrarily —
  // per-communicator tags plus FIFO matching must keep every stream
  // intact on every interleaving.
  const int p = 4;
  Machine m(p);
  for (int round = 0; round < 8; ++round) {
    m.run([](Rank& r) {
      Comm world = Comm::world(r);
      const int row = r.id() / 2;
      const int col = r.id() % 2;
      Comm rowc = world.range(row * 2, 2);
      Comm colc = world.strided_fiber(2);

      Buf mine_row(3, static_cast<double>(r.id()));
      Buffer row_all = allgather_equal(rowc, std::move(mine_row));
      ASSERT_EQ(row_all.size(), 6u);
      for (int q = 0; q < 2; ++q)
        for (int c = 0; c < 3; ++c)
          ASSERT_DOUBLE_EQ(row_all[static_cast<std::size_t>(3 * q + c)],
                           static_cast<double>(row * 2 + q));

      Buf mine_col(5, static_cast<double>(10 + r.id()));
      Buffer col_all = allgather_equal(colc, std::move(mine_col));
      ASSERT_EQ(col_all.size(), 10u);
      for (int q = 0; q < 2; ++q)
        for (int c = 0; c < 5; ++c)
          ASSERT_DOUBLE_EQ(col_all[static_cast<std::size_t>(5 * q + c)],
                           static_cast<double>(10 + col + 2 * q));
    });
  }
}

}  // namespace
}  // namespace catrsm::coll
