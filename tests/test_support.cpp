// Tests for the support utilities: checks, integer log helpers, RNG
// streams, the table printer, and the CLI parser.

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace catrsm {
namespace {

TEST(Check, MacroThrowsWithContext) {
  try {
    CATRSM_CHECK(1 == 2, "the message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
  }
}

TEST(Check, IntegerHelpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(ilog2_exact(1), 0);
  EXPECT_EQ(ilog2_exact(1024), 10);
  EXPECT_THROW(ilog2_exact(12), Error);
  EXPECT_EQ(ilog2_ceil(1), 0);
  EXPECT_EQ(ilog2_ceil(5), 3);
  EXPECT_EQ(ilog2_ceil(8), 3);
  EXPECT_EQ(ceil_div(7, 3), 3);
  EXPECT_EQ(ceil_div(6, 3), 2);
}

TEST(Rng, DeterministicAndChildStreamsIndependent) {
  Rng a(5), b(5);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  Rng parent(9);
  Rng c1 = parent.child(1);
  Rng c2 = parent.child(2);
  // Different children produce different streams.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i)
    any_diff |= c1.uniform(0, 1) != c2.uniform(0, 1);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundsRespected) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
    const long long v = r.uniform_int(4, 9);
    EXPECT_GE(v, 4);
    EXPECT_LE(v, 9);
  }
}

TEST(Table, AlignsColumnsAndFormatsNumbers) {
  Table t({"name", "value"});
  t.row().add("alpha").add(3.14159);
  t.row().add("big").add(1.0e9);
  t.row().add("tiny").add(1.0e-9);
  t.row().add("count").add(static_cast<long long>(42));
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("3.142"), std::string::npos);
  EXPECT_NE(out.find("1.000e+09"), std::string::npos);
  EXPECT_NE(out.find("1.000e-09"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  // Every line has the same width.
  std::istringstream lines(out);
  std::string line, first;
  std::getline(lines, first);
  while (std::getline(lines, line)) EXPECT_EQ(line.size(), first.size());
}

TEST(Table, OverfilledRowThrows) {
  Table t({"one"});
  t.row().add("a");
  EXPECT_THROW(t.add("b"), Error);
  Table t2({"x"});
  EXPECT_THROW(t2.add("no row yet"), Error);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",      "--n",       "32",   "--k=7",
                        "--verbose", "--rate",    "2.5",  "--name",
                        "hello",     "--trailing"};
  Cli cli(10, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 32);
  EXPECT_EQ(cli.get_int("k", 0), 7);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(cli.get_string("name", ""), "hello");
  EXPECT_TRUE(cli.has("trailing"));
  EXPECT_EQ(cli.get_int("absent", -3), -3);
}

TEST(Cli, NegativeNumericValuesAreValues) {
  const char* argv[] = {"prog",  "--shift", "-3",        "--rate",
                        "-2.5",  "--exp",   "-1e-3",     "--flag",
                        "--dir", "-up"};
  Cli cli(10, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("shift", 0), -3);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), -2.5);
  EXPECT_DOUBLE_EQ(cli.get_double("exp", 0.0), -1e-3);
  // "-up" is not numeric, so --flag stays a boolean and -up is skipped.
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get_int("flag", 7), 1);
  EXPECT_TRUE(cli.has("dir"));
}

TEST(Cli, DashDashTokensAreNeverValues) {
  const char* argv[] = {"prog", "--a", "--2", "--b", "-e5"};
  Cli cli(5, const_cast<char**>(argv));
  // "--2" and "-e5" do not fully parse as numbers: both flags stay
  // boolean and the tokens are not consumed as values.
  EXPECT_EQ(cli.get_int("a", 7), 1);
  EXPECT_EQ(cli.get_int("b", 7), 1);
  EXPECT_TRUE(cli.has("2"));  // "--2" is parsed as its own flag
}

TEST(Cli, MalformedNumbersFailWithClearError) {
  const char* argv[] = {"prog", "--n", "abc", "--k=12xy", "--r", "1.2.3"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("n", 0), Error);
  EXPECT_THROW((void)cli.get_int("k", 0), Error);
  EXPECT_THROW((void)cli.get_double("r", 0.0), Error);
  try {
    (void)cli.get_int("n", 0);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--n expects an integer"),
              std::string::npos);
  }
  // Untouched flags still work on the same parse.
  EXPECT_EQ(cli.get_string("n", ""), "abc");
}

TEST(Cli, OutOfRangeIntegerFails) {
  const char* argv[] = {"prog", "--n", "99999999999999999999999999"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("n", 0), Error);
}

}  // namespace
}  // namespace catrsm
