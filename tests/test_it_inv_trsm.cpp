// Tests for the paper's main contribution: the iterative TRSM with
// selective block-diagonal inversion (Sections VI-VII).

#include <gtest/gtest.h>

#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "la/trsm.hpp"
#include "sim/machine.hpp"
#include "trsm/it_inv_trsm.hpp"
#include "trsm/rec_trsm.hpp"

namespace catrsm::trsm {
namespace {

using dist::Face2D;
using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;
using sim::RunStats;

struct ItCase {
  index_t n, k;
  int p1, p2;
  int nblocks;
};

class ItInvSweep : public ::testing::TestWithParam<ItCase> {};

TEST_P(ItInvSweep, MatchesSequentialSolve) {
  const ItCase tc = GetParam();
  const int p = tc.p1 * tc.p1 * tc.p2;
  Machine m(p);
  const Matrix l = la::make_lower_triangular(41, tc.n);
  const Matrix b = la::make_rhs(42, tc.n, tc.k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = it_inv_l_face(world, tc.p1, tc.p2);
    auto ld = dist::cyclic_on(lface, tc.n, tc.n);
    DistMatrix dl(ld, r.id());
    if (dl.participates()) dl.fill_from_global(l);
    auto bd = it_inv_b_dist(world, tc.p1, tc.p2, tc.n, tc.k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);
    ItInvOptions opts;
    opts.nblocks = tc.nblocks;
    DistMatrix dx = it_inv_trsm(dl, db, world, tc.p1, tc.p2, opts);
    const Matrix got = collect(dx, world);
    EXPECT_LT(la::max_abs_diff(got, ref), 1e-9)
        << "n=" << tc.n << " k=" << tc.k << " p1=" << tc.p1
        << " p2=" << tc.p2 << " nblocks=" << tc.nblocks;
    EXPECT_LT(la::trsm_residual(l, got, b), 1e-12);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ItInvSweep,
    ::testing::Values(ItCase{16, 4, 1, 1, 1},     // single rank, 1 block
                      ItCase{16, 4, 1, 1, 4},     // single rank, blocks
                      ItCase{16, 8, 2, 1, 2},     // 2D grid
                      ItCase{16, 8, 2, 2, 2},     // full 3D grid
                      ItCase{32, 8, 2, 2, 4},     // more blocks
                      ItCase{32, 16, 2, 4, 4},    // deep z
                      ItCase{17, 5, 2, 2, 3},     // ragged everything
                      ItCase{24, 6, 1, 4, 4},     // p1 = 1 (1D layout)
                      ItCase{48, 12, 2, 2, 8},    // many blocks
                      ItCase{16, 40, 2, 2, 2},    // k > n
                      ItCase{36, 9, 3, 1, 3}));   // non-pow2 p1

TEST(ItInvTrsm, FullInversionExtremeMatches) {
  // nblocks = 1 degenerates to "invert the whole matrix, then multiply" —
  // the other end of the paper's generalization spectrum.
  const index_t n = 24, k = 8;
  Machine m(8);
  const Matrix l = la::make_lower_triangular(43, n);
  const Matrix b = la::make_rhs(44, n, k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = it_inv_l_face(world, 2, 2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates()) dl.fill_from_global(l);
    auto bd = it_inv_b_dist(world, 2, 2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);
    ItInvOptions opts;
    opts.nblocks = 1;
    DistMatrix dx = it_inv_trsm(dl, db, world, 2, 2, opts);
    EXPECT_LT(la::max_abs_diff(collect(dx, world), ref), 1e-10);
  });
}

TEST(ItInvTrsm, AutoNblocksSolvesCorrectly) {
  const index_t n = 32, k = 8;
  Machine m(8);
  const Matrix l = la::make_lower_triangular(45, n);
  const Matrix b = la::make_rhs(46, n, k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = it_inv_l_face(world, 2, 2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates()) dl.fill_from_global(l);
    auto bd = it_inv_b_dist(world, 2, 2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);
    DistMatrix dx = it_inv_trsm(dl, db, world, 2, 2);  // auto nblocks
    EXPECT_LT(la::max_abs_diff(collect(dx, world), ref), 1e-9);
  });
}

TEST(ItInvTrsm, AutoNblocksRegimes) {
  // 1D regime: one block (inversion dominates anyway).
  EXPECT_EQ(it_inv_auto_nblocks(8, 1 << 16, 64), 1);
  // 3D regime: n/n0 = n / sqrt(nk) = sqrt(n/k).
  const int blocks_3d = it_inv_auto_nblocks(1 << 14, 1 << 10, 64);
  EXPECT_GE(blocks_3d, 2);
  EXPECT_LE(blocks_3d, 8);
  // 2D regime: nontrivial block count, bounded by p.
  const int blocks_2d = it_inv_auto_nblocks(1 << 16, 4, 64);
  EXPECT_GE(blocks_2d, 1);
  EXPECT_LE(blocks_2d, 64);
}

TEST(ItInvTrsm, LatencyBeatsRecursiveInThreeLargeDims) {
  // The headline claim at executable scale: same (n, k, p), measure S for
  // the recursive algorithm vs the iterative one in the 3D regime.
  const index_t n = 64, k = 16;
  const int p = 16;

  const Matrix l = la::make_lower_triangular(47, n);
  const Matrix b = la::make_rhs(48, n, k);

  Machine m(p);
  const RunStats rec_stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 4, 4);
    auto ld = dist::cyclic_on(face, n, n);
    auto bd = dist::cyclic_on(face, n, k);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix db(bd, r.id());
    db.fill_from_global(b);
    RecTrsmOptions opts;
    opts.n0 = 8;  // forces the deep recursion the paper analyzes
    (void)rec_trsm(dl, db, world, opts);
  });

  const RunStats it_stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = it_inv_l_face(world, 2, 4);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates()) dl.fill_from_global(l);
    auto bd = it_inv_b_dist(world, 2, 4, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);
    ItInvOptions opts;
    opts.nblocks = 2;  // sqrt(n/k) = 2
    (void)it_inv_trsm(dl, db, world, 2, 4, opts);
  });

  EXPECT_LT(it_stats.max_msgs(), rec_stats.max_msgs());
}

TEST(ItInvTrsm, NumericallyStableOnLargerSystem) {
  // Residual stays at machine-precision levels even through inversion —
  // the Du Croz & Higham stability property the paper leans on.
  const index_t n = 96, k = 8;
  Machine m(8);
  const Matrix l = la::make_lower_triangular(49, n);
  const Matrix b = la::make_rhs(50, n, k);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = it_inv_l_face(world, 2, 2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates()) dl.fill_from_global(l);
    auto bd = it_inv_b_dist(world, 2, 2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);
    ItInvOptions opts;
    opts.nblocks = 6;
    DistMatrix dx = it_inv_trsm(dl, db, world, 2, 2, opts);
    const Matrix got = collect(dx, world);
    EXPECT_LT(la::trsm_residual(l, got, b), 1e-13);
  });
}

TEST(ItInvTrsm, PhaseAccountingCoversAllCosts) {
  // Phase buckets (inversion / setup / solve / update) must exist and,
  // summed per rank, equal the rank's total cost — nothing charged
  // outside a phase, nothing double-counted.
  const index_t n = 32, k = 8;
  Machine m(8);
  const Matrix l = la::make_lower_triangular(53, n);
  const Matrix b = la::make_rhs(54, n, k);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = it_inv_l_face(world, 2, 2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates()) dl.fill_from_global(l);
    auto bd = it_inv_b_dist(world, 2, 2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);
    ItInvOptions opts;
    opts.nblocks = 4;
    (void)it_inv_trsm(dl, db, world, 2, 2, opts);

    sim::Cost phase_sum;
    for (const auto& [name, cost] : r.phase_costs()) phase_sum += cost;
    EXPECT_DOUBLE_EQ(phase_sum.msgs, r.cost().msgs);
    EXPECT_DOUBLE_EQ(phase_sum.words, r.cost().words);
    EXPECT_DOUBLE_EQ(phase_sum.flops, r.cost().flops);
  });
  EXPECT_TRUE(stats.phase_max.count("inversion"));
  EXPECT_TRUE(stats.phase_max.count("setup"));
  EXPECT_TRUE(stats.phase_max.count("solve"));
  EXPECT_TRUE(stats.phase_max.count("update"));
  // With 4 blocks the solve/update chains dominate the latency.
  EXPECT_GT(stats.phase_max.at("solve").msgs, 0.0);
  EXPECT_GT(stats.phase_max.at("update").msgs, 0.0);
}

TEST(ItInvTrsm, DeterministicAcrossRuns) {
  const index_t n = 24, k = 6;
  Machine m(8);
  const Matrix l = la::make_lower_triangular(51, n);
  const Matrix b = la::make_rhs(52, n, k);
  Matrix first(n, k), second(n, k);
  auto job = [&](Matrix* out) {
    return [&, out](Rank& r) {
      Comm world = Comm::world(r);
      Face2D lface = it_inv_l_face(world, 2, 2);
      auto ld = dist::cyclic_on(lface, n, n);
      DistMatrix dl(ld, r.id());
      if (dl.participates()) dl.fill_from_global(l);
      auto bd = it_inv_b_dist(world, 2, 2, n, k);
      DistMatrix db(bd, r.id());
      if (db.participates()) db.fill_from_global(b);
      ItInvOptions opts;
      opts.nblocks = 3;
      DistMatrix dx = it_inv_trsm(dl, db, world, 2, 2, opts);
      const Matrix full = collect(dx, world);
      if (r.id() == 0) *out = full;
    };
  };
  m.run(job(&first));
  m.run(job(&second));
  EXPECT_TRUE(first.equals(second));  // bitwise reproducible
}

}  // namespace
}  // namespace catrsm::trsm
