// Tests for distributed recursive triangular inversion (Section V) and the
// diagonal-block inverter (Section VI-A).

#include <gtest/gtest.h>

#include <cmath>

#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "la/tri_inv.hpp"
#include "sim/machine.hpp"
#include "trsm/diag_inverter.hpp"
#include "trsm/tri_inv_dist.hpp"

namespace catrsm::trsm {
namespace {

using dist::Face2D;
using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;
using sim::RunStats;

struct InvCase {
  index_t n;
  int pr, pc;
  index_t base;
};

class TriInvSweep : public ::testing::TestWithParam<InvCase> {};

TEST_P(TriInvSweep, InverseResidualSmall) {
  const InvCase tc = GetParam();
  Machine m(tc.pr * tc.pc);
  const Matrix l = la::make_lower_triangular(21, tc.n);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, tc.pr, tc.pc);
    auto ld = dist::cyclic_on(face, tc.n, tc.n);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    TriInvOptions opts;
    opts.base_size = tc.base;
    DistMatrix dinv = tri_inv_dist(dl, world, opts);
    const Matrix inv = collect(dinv, world);
    EXPECT_LT(la::inv_residual(l, inv), 1e-11)
        << "n=" << tc.n << " grid=" << tc.pr << "x" << tc.pc;
    // Distributed must match the sequential recursion closely.
    const Matrix seq = la::tri_inv(la::Uplo::kLower, l);
    EXPECT_LT(la::max_abs_diff(inv, seq), 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TriInvSweep,
    ::testing::Values(InvCase{8, 1, 1, 4},     // sequential
                      InvCase{16, 2, 2, 4},    // one split level
                      InvCase{32, 2, 2, 8},    // two levels
                      InvCase{32, 4, 4, 8},    // 16 ranks
                      InvCase{17, 2, 2, 4},    // odd n
                      InvCase{24, 2, 3, 4},    // non-square, non-pow2
                      InvCase{64, 2, 4, 16})); // rectangular grid

TEST(TriInvDist, LatencyIsPolylog) {
  // S = O(log^2 p): each of the log p recursion levels costs O(log p)
  // rounds (redistributions + MM collectives). The measured constant is
  // ~12 rounds per log p unit; assert the absolute polylog envelope and
  // sub-linear growth in p at several machine sizes.
  const index_t n = 96;
  auto measure = [&](int pr, int pc) {
    Machine m(pr * pc);
    const Matrix l = la::make_lower_triangular(23, n);
    return m.run([&](Rank& r) {
      Comm world = Comm::world(r);
      Face2D face(world, pr, pc);
      auto ld = dist::cyclic_on(face, n, n);
      DistMatrix dl(ld, r.id());
      dl.fill_from_global(l);
      TriInvOptions opts;
      opts.base_size = 4;
      (void)tri_inv_dist(dl, world, opts);
    });
  };
  const RunStats s4 = measure(2, 2);
  const RunStats s16 = measure(4, 4);
  const RunStats s64 = measure(8, 8);
  auto envelope = [](int p) {
    const double lg = std::log2(static_cast<double>(p));
    return 20.0 * lg * lg;
  };
  EXPECT_LT(s4.max_msgs(), envelope(4));
  EXPECT_LT(s16.max_msgs(), envelope(16));
  EXPECT_LT(s64.max_msgs(), envelope(64));
  // Growth from p=16 to p=64 must stay far below the 4x of a latency
  // schedule linear in p.
  EXPECT_LT(s64.max_msgs(), 2.8 * s16.max_msgs());
}

TEST(TriInvDist, ResultStaysLowerTriangular) {
  const index_t n = 20;
  Machine m(4);
  const Matrix l = la::make_lower_triangular(25, n);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto ld = dist::cyclic_on(face, n, n);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    const Matrix inv = collect(tri_inv_dist(dl, world), world);
    for (index_t i = 0; i < n; ++i)
      for (index_t j = i + 1; j < n; ++j)
        EXPECT_NEAR(inv(i, j), 0.0, 1e-14);
  });
}

struct DiagCase {
  index_t n;
  int p;
  int nblocks;
};

class DiagInvSweep : public ::testing::TestWithParam<DiagCase> {};

TEST_P(DiagInvSweep, InvertsDiagonalKeepsPanels) {
  const DiagCase tc = GetParam();
  Machine m(tc.p);
  const Matrix l = la::make_lower_triangular(31, tc.n);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = dist::balanced_factors(tc.p);
    Face2D face(world, pr, pc);
    auto ld = dist::cyclic_on(face, tc.n, tc.n);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix dt = diag_inverter(dl, world, tc.nblocks);
    const Matrix lt = collect(dt, world);

    const index_t nb = ceil_div(tc.n, tc.nblocks);
    for (int bkt = 0; bkt < tc.nblocks; ++bkt) {
      const index_t o = static_cast<index_t>(bkt) * nb;
      if (o >= tc.n) break;
      const index_t sz = std::min<index_t>(nb, tc.n - o);
      // Diagonal block must be the inverse of the original block.
      const Matrix orig = l.block(o, o, sz, sz);
      const Matrix got = lt.block(o, o, sz, sz);
      EXPECT_LT(la::inv_residual(orig, got), 1e-11)
          << "block " << bkt << " n=" << tc.n << " p=" << tc.p;
    }
    // Everything below the block diagonal must be untouched.
    for (index_t i = 0; i < tc.n; ++i)
      for (index_t j = 0; j < i; ++j) {
        if (i / nb != j / nb) {
          EXPECT_DOUBLE_EQ(lt(i, j), l(i, j));
        }
      }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiagInvSweep,
    ::testing::Values(DiagCase{16, 4, 1},    // full inversion, all ranks
                      DiagCase{16, 4, 2},    // two blocks, two ranks each
                      DiagCase{16, 4, 4},    // one rank per block
                      DiagCase{24, 8, 4},    // two ranks per block
                      DiagCase{17, 4, 3},    // ragged blocks
                      DiagCase{32, 6, 3},    // q=2 on non-pow2 p
                      DiagCase{32, 16, 4})); // subgrids of 4

TEST(DiagInverter, AllBlocksInvertInParallelLatency) {
  // Inverting 4 blocks with 4 subgrids should cost barely more latency
  // than inverting 1 block with one subgrid of the same size — the blocks
  // proceed concurrently (plus the shared scatter/gather all-to-alls).
  const index_t n = 64;
  auto measure = [&](int p, int nblocks) {
    Machine m(p);
    const Matrix l = la::make_lower_triangular(33, n);
    return m.run([&](Rank& r) {
      Comm world = Comm::world(r);
      const auto [pr, pc] = dist::balanced_factors(p);
      Face2D face(world, pr, pc);
      auto ld = dist::cyclic_on(face, n, n);
      DistMatrix dl(ld, r.id());
      dl.fill_from_global(l);
      (void)diag_inverter(dl, world, nblocks);
    });
  };
  const RunStats one = measure(4, 1);    // one 64-block on 4 ranks
  const RunStats four = measure(16, 4);  // four 16-blocks on 4 ranks each
  EXPECT_LT(four.max_msgs(), 2.5 * one.max_msgs());
}

TEST(DiagInverter, MoreBlocksThanRanksInvertSequentially) {
  const index_t n = 16;
  Machine m(2);
  const Matrix l = la::make_lower_triangular(35, n);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 1, 2);
    auto ld = dist::cyclic_on(face, n, n);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix dt = diag_inverter(dl, world, 4);  // 4 blocks on 2 ranks
    const Matrix lt = collect(dt, world);
    for (int bkt = 0; bkt < 4; ++bkt) {
      const index_t o = bkt * 4;
      EXPECT_LT(la::inv_residual(l.block(o, o, 4, 4), lt.block(o, o, 4, 4)),
                1e-12);
    }
  });
}

}  // namespace
}  // namespace catrsm::trsm
