// Tests for processor grids, distributions, distributed matrices, and the
// generic redistribution engine.

#include <gtest/gtest.h>

#include <array>

#include "dist/dist_matrix.hpp"
#include "dist/grid.hpp"
#include "dist/layout.hpp"
#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "sim/machine.hpp"

namespace catrsm::dist {
namespace {

using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;

TEST(Grid, Face2DPositionsAndFibers) {
  Machine m(6);
  m.run([](Rank& r) {
    Face2D face(Comm::world(r), 2, 3);
    EXPECT_EQ(face.at(face.my_gi(), face.my_gj()), r.id());
    Comm row = face.row_comm();
    EXPECT_EQ(row.size(), 3);
    Comm col = face.col_comm();
    EXPECT_EQ(col.size(), 2);
    // Row comm is ordered by gj, so my index equals my gj.
    EXPECT_EQ(row.rank(), face.my_gj());
    EXPECT_EQ(col.rank(), face.my_gi());
  });
}

TEST(Grid, ProcGrid3DFibersContainSelf) {
  Machine m(2 * 2 * 3);
  m.run([](Rank& r) {
    ProcGrid3D g(Comm::world(r), 2, 3);
    EXPECT_EQ(g.at(g.my_x(), g.my_y(), g.my_z()), r.id());
    EXPECT_EQ(g.x_fiber().size(), 2);
    EXPECT_EQ(g.y_fiber().size(), 2);
    EXPECT_EQ(g.z_fiber().size(), 3);
    EXPECT_EQ(g.x_fiber().rank(), g.my_x());
    EXPECT_EQ(g.y_fiber().rank(), g.my_y());
    EXPECT_EQ(g.z_fiber().rank(), g.my_z());
  });
}

TEST(Grid, BalancedFactors) {
  EXPECT_EQ(balanced_factors(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(balanced_factors(12), (std::pair<int, int>{3, 4}));
  EXPECT_EQ(balanced_factors(7), (std::pair<int, int>{1, 7}));
  EXPECT_EQ(balanced_factors(1), (std::pair<int, int>{1, 1}));
}

TEST(Layout, BlockCyclicOwnershipPartition) {
  // Every element has exactly one owner and local shapes tile the matrix.
  Machine m(6);
  m.run([](Rank& r) {
    Face2D face(Comm::world(r), 2, 3);
    BlockCyclicDist d(face, 11, 13, 2, 3);
    index_t total = 0;
    for (int w = 0; w < 6; ++w) {
      const auto shape = d.local_shape(w);
      total += shape.first * shape.second;
    }
    EXPECT_EQ(total, 11 * 13);
    // parts_of_world and world_rank_of are inverse.
    const auto parts = d.parts_of_world(r.id());
    ASSERT_TRUE(parts.has_value());
    EXPECT_EQ(d.world_rank_of(parts->first, parts->second), r.id());
  });
}

TEST(Layout, CyclicIsBlockCyclicWithUnitBlocks) {
  Machine m(4);
  m.run([](Rank& r) {
    Face2D face(Comm::world(r), 2, 2);
    auto d = cyclic_on(face, 8, 8);
    EXPECT_EQ(d->part_of_row(5), 1);
    EXPECT_EQ(d->part_of_col(6), 0);
    const auto rows = d->rows_of_part(1);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0], 1);
    EXPECT_EQ(rows[3], 7);
  });
}

TEST(Layout, RowCyclicColBlockedSlabs) {
  Machine m(6);
  m.run([](Rank& r) {
    Face2D face(Comm::world(r), 2, 3);
    auto d = row_cyclic_col_blocked(face, 10, 9);
    // Columns fall into 3 contiguous slabs of 3.
    EXPECT_EQ(d->part_of_col(0), 0);
    EXPECT_EQ(d->part_of_col(2), 0);
    EXPECT_EQ(d->part_of_col(3), 1);
    EXPECT_EQ(d->part_of_col(8), 2);
    EXPECT_EQ(d->part_of_row(7), 1);
  });
}

TEST(Layout, Cyclic3DOwnershipPartition) {
  Machine m(2 * 2 * 2);
  m.run([](Rank& r) {
    ProcGrid3D g(Comm::world(r), 2, 2);
    Cyclic3DDist d(g, 9, 7);
    index_t total = 0;
    for (int w = 0; w < 8; ++w) {
      const auto shape = d.local_shape(w);
      total += shape.first * shape.second;
    }
    EXPECT_EQ(total, 9 * 7);
    const auto parts = d.parts_of_world(r.id());
    ASSERT_TRUE(parts.has_value());
    EXPECT_EQ(d.world_rank_of(parts->first, parts->second), r.id());
    // Row ownership: i = 5 has x = 1, z = (5/2) % 2 = 0 -> rpart = 1.
    EXPECT_EQ(d.part_of_row(5), 1);
  });
}

TEST(DistMatrix, FillAndCollectRoundTrip) {
  const index_t n = 12, k = 9;
  Machine m(6);
  const Matrix ref = la::make_dense(33, n, k);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 3);
    auto d = std::make_shared<BlockCyclicDist>(face, n, k, 2, 2);
    DistMatrix dm(d, r.id());
    dm.fill([&](index_t i, index_t j) { return ref(i, j); });
    Matrix got = collect(dm, world);
    EXPECT_LT(la::max_abs_diff(got, ref), 1e-15);
  });
}

TEST(DistMatrix, LocalRowsColsAreSortedGlobals) {
  Machine m(4);
  m.run([](Rank& r) {
    Face2D face(Comm::world(r), 2, 2);
    auto d = std::make_shared<BlockCyclicDist>(face, 10, 10, 3, 3);
    DistMatrix dm(d, r.id());
    const auto& rows = dm.my_rows();
    for (std::size_t i = 1; i < rows.size(); ++i)
      EXPECT_LT(rows[i - 1], rows[i]);
  });
}

struct RedistCase {
  int p;
  index_t rows, cols;
  index_t src_br, src_bc;
  index_t dst_br, dst_bc;
};

class RedistSweep : public ::testing::TestWithParam<RedistCase> {};

TEST_P(RedistSweep, PreservesEveryElement) {
  const RedistCase tc = GetParam();
  Machine m(tc.p);
  const Matrix ref = la::make_dense(77, tc.rows, tc.cols);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = balanced_factors(tc.p);
    Face2D face(world, pr, pc);
    auto src_d = std::make_shared<BlockCyclicDist>(face, tc.rows, tc.cols,
                                                   tc.src_br, tc.src_bc);
    // Destination face deliberately transposed to force real movement.
    Face2D dface(world, pc, pr);
    auto dst_d = std::make_shared<BlockCyclicDist>(dface, tc.rows, tc.cols,
                                                   tc.dst_br, tc.dst_bc);
    DistMatrix src(src_d, r.id());
    src.fill_from_global(ref);
    DistMatrix dst = redistribute(src, dst_d, world);
    Matrix got = collect(dst, world);
    EXPECT_LT(la::max_abs_diff(got, ref), 1e-15);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedistSweep,
    ::testing::Values(RedistCase{1, 5, 5, 1, 1, 2, 2},
                      RedistCase{4, 8, 8, 1, 1, 2, 2},
                      RedistCase{4, 9, 7, 1, 1, 4, 4},
                      RedistCase{6, 12, 10, 2, 1, 1, 3},
                      RedistCase{8, 16, 16, 1, 1, 16, 16},
                      RedistCase{12, 13, 11, 3, 2, 1, 1},
                      RedistCase{16, 32, 8, 1, 1, 2, 2}));

TEST(Redistribute, CyclicToCyclic3DAndBack) {
  const index_t n = 12;
  const int p1 = 2, p2 = 2;
  Machine m(p1 * p1 * p2);
  const Matrix ref = la::make_lower_triangular(88, n);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    const auto [pr, pc] = balanced_factors(world.size());
    Face2D face(world, pr, pc);
    auto c2d = cyclic_on(face, n, n);
    DistMatrix src(c2d, r.id());
    src.fill_from_global(ref);

    ProcGrid3D g(world, p1, p2);
    auto c3d = std::make_shared<Cyclic3DDist>(g, n, n);
    DistMatrix mid = redistribute(src, c3d, world);
    DistMatrix back = redistribute(mid, c2d, world);
    EXPECT_LT(la::max_abs_diff(collect(back, world), ref), 1e-15);
  });
}

TEST(Redistribute, DirectAlgoMatchesBruck) {
  const index_t n = 10;
  Machine m(4);
  const Matrix ref = la::make_dense(99, n, n);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto src_d = std::make_shared<BlockCyclicDist>(face, n, n, 1, 1);
    auto dst_d = std::make_shared<BlockCyclicDist>(face, n, n, 3, 3);
    DistMatrix src(src_d, r.id());
    src.fill_from_global(ref);
    DistMatrix a = redistribute(src, dst_d, world, coll::AlltoallAlgo::kBruck);
    DistMatrix b = redistribute(src, dst_d, world,
                                coll::AlltoallAlgo::kDirect);
    EXPECT_TRUE(a.local().equals(b.local()));
  });
}

TEST(Redistribute, SubsetFacesInsideLargerComm) {
  // Source lives on ranks {0,1}, destination on ranks {2,3}; the exchange
  // happens over the full world.
  const index_t n = 6;
  Machine m(4);
  const Matrix ref = la::make_dense(111, n, n);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D src_face(Comm(world.ctx(), {0, 1}), 1, 2);
    Face2D dst_face(Comm(world.ctx(), {2, 3}), 2, 1);
    auto src_d = std::make_shared<BlockCyclicDist>(src_face, n, n, 1, 1);
    auto dst_d = std::make_shared<BlockCyclicDist>(dst_face, n, n, 1, 1);
    DistMatrix src(src_d, r.id());
    if (src.participates()) src.fill_from_global(ref);
    DistMatrix dst = redistribute(src, dst_d, world);
    EXPECT_EQ(dst.participates(), r.id() >= 2);
    Matrix got = collect(dst, world);
    EXPECT_LT(la::max_abs_diff(got, ref), 1e-15);
  });
}

TEST(GatherRegion, AssemblesArbitrarySubBlocksEverywhere) {
  const index_t n = 14, k = 11;
  Machine m(6);
  const Matrix ref = la::make_dense(123, n, k);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 3);
    auto d = std::make_shared<BlockCyclicDist>(face, n, k, 2, 1);
    DistMatrix dm(d, r.id());
    dm.fill_from_global(ref);
    for (const auto& [rlo, rhi, clo, chi] :
         std::vector<std::array<index_t, 4>>{
             {0, n, 0, k}, {3, 9, 2, 7}, {5, 6, 0, 1}, {0, 1, 10, 11}}) {
      const Matrix got = gather_region(dm.dist(), dm.local(), dm.me(), world,
                                       rlo, rhi, clo, chi);
      EXPECT_LT(la::max_abs_diff(got, ref.block(rlo, clo, rhi - rlo,
                                                chi - clo)),
                1e-15);
    }
  });
}

TEST(GatherRegion, WorkingCopyOverridesStoredValues) {
  // The `local` argument may be a working copy that evolved past the
  // DistMatrix — gather must read it, not the original.
  const index_t n = 8;
  Machine m(4);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto d = dist::cyclic_on(face, n, n);
    DistMatrix dm(d, r.id());
    dm.fill([](index_t, index_t) { return 1.0; });
    Matrix working = dm.local();
    working.scale(3.0);
    const Matrix got =
        gather_region(dm.dist(), working, dm.me(), world, 0, n, 0, n);
    EXPECT_DOUBLE_EQ(got(5, 5), 3.0);
  });
}

TEST(Redistribute, ShapeMismatchThrows) {
  Machine m(2);
  EXPECT_THROW(
      m.run([](Rank& r) {
        Comm world = Comm::world(r);
        Face2D face(world, 1, 2);
        auto a = std::make_shared<BlockCyclicDist>(face, 4, 4, 1, 1);
        auto b = std::make_shared<BlockCyclicDist>(face, 4, 5, 1, 1);
        DistMatrix src(a, r.id());
        (void)redistribute(src, b, world);
      }),
      Error);
}

}  // namespace
}  // namespace catrsm::dist
