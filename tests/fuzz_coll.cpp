// Collective-layer fuzzer with optional fault injection (sim/fault
// subsystem driver).
//
// Generates random scripts of collectives — allgather / reduce-scatter /
// scatter / gather / bcast / reduce / allreduce / barrier over random
// subgroup topologies (the world, rank-prefix ranges, concurrent strided
// fibers) — and runs each on a random machine size with the full oracle
// armed (collective matching, tracing, always-on deadlock detection).
// Payloads are small integers, so every result is verified EXACTLY
// in-body; a wrong element throws a plain std::runtime_error, which no
// detector claims — i.e. a silent-wrong-answer escape fails the run.
//
// Half the scripts additionally arm a random fault plan (random class,
// seed, rate). The contract fuzzed here is the coverage matrix's global
// guarantee: a faulted run either completes with every exact check
// passing and a trace that replays bit-identically, or surfaces an error
// that check::report_fault attributes to a named detector. Either way
// the machine must come back: the same script reruns cleanly afterwards.
//
//   fuzz_coll [--runs N] [--seed S] [--verbose]

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "coll/collectives.hpp"
#include "sim/check/fault_report.hpp"
#include "sim/check/trace.hpp"
#include "sim/comm.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"

namespace {

using catrsm::coll::Counts;
using catrsm::sim::Buffer;
using catrsm::sim::Comm;
using catrsm::sim::FaultClass;
using catrsm::sim::FaultPlan;
using catrsm::sim::Machine;
using catrsm::sim::Rank;
namespace check = catrsm::sim::check;
namespace coll = catrsm::coll;

struct Options {
  int runs = 20;
  std::uint64_t seed = 1;
  bool verbose = false;
};

int pick(std::mt19937_64& rng, const std::vector<int>& from) {
  return from[std::uniform_int_distribution<std::size_t>(
      0, from.size() - 1)(rng)];
}

/// One scripted collective round; the whole script is generated on the
/// host from the seed, so every rank runs the identical SPMD program.
struct Round {
  int kind = 0;  // 0..6, see run_round
  int a = 0;     // width / stride / subgroup size, per kind
  int b = 0;     // salt / root selector, per kind
};

/// Exact in-body verification. Deliberately NOT a catrsm::Error: if a
/// fault slips a wrong value past every detector, report_fault must
/// classify this as undetected — the escape the fuzzer exists to catch.
void expect_eq(double got, double want, const char* what) {
  if (got != want)
    throw std::runtime_error(std::string("fuzz_coll: wrong result in ") +
                             what + ": got " + std::to_string(got) +
                             ", want " + std::to_string(want));
}

/// Sum of (id + 1) over the world ranks of `comm`'s members.
double member_weight(const Comm& comm) {
  double sum = 0.0;
  for (const int w : comm.members()) sum += w + 1.0;
  return sum;
}

void run_round(Rank& r, const Round& rd) {
  Comm world = Comm::world(r);
  const int p = world.size();
  const int me = r.id();
  switch (rd.kind) {
    case 0: {  // world allreduce of width a
      const auto w = static_cast<std::size_t>(rd.a);
      const Buffer out =
          coll::allreduce(world, Buffer(std::vector<double>(w, me + 1.0)));
      expect_eq(static_cast<double>(out.size()), static_cast<double>(w),
                "allreduce size");
      for (std::size_t i = 0; i < out.size(); ++i)
        expect_eq(out[i], member_weight(world), "allreduce");
      break;
    }
    case 1: {  // allgather on the rank prefix [0, a) with uneven counts
      Comm g = world.range(0, rd.a);
      if (!g.is_member()) break;
      Counts counts(static_cast<std::size_t>(rd.a));
      for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] = 1 + (i + static_cast<std::size_t>(rd.b)) % 3;
      const Buffer out = coll::allgather(
          g,
          Buffer(std::vector<double>(
              counts[static_cast<std::size_t>(g.rank())],
              static_cast<double>(me))),
          counts);
      std::size_t pos = 0;
      for (std::size_t i = 0; i < counts.size(); ++i)
        for (std::size_t j = 0; j < counts[i]; ++j)
          expect_eq(out[pos++], static_cast<double>(i), "allgather");
      break;
    }
    case 2: {  // concurrent allreduce on stride-a fibers
      Comm fiber = world.strided_fiber(rd.a);
      const Buffer out = coll::allreduce(
          fiber, Buffer(std::vector<double>(2, me + 1.0)));
      for (std::size_t i = 0; i < out.size(); ++i)
        expect_eq(out[i], member_weight(fiber), "fiber allreduce");
      break;
    }
    case 3: {  // concurrent reduce_scatter on stride-a fibers
      Comm fiber = world.strided_fiber(rd.a);
      const auto g = static_cast<std::size_t>(fiber.size());
      const auto c = static_cast<std::size_t>(1 + rd.b % 2);
      const Counts counts(g, c);
      const Buffer out = coll::reduce_scatter(
          fiber, Buffer(std::vector<double>(g * c, me + 1.0)), counts);
      expect_eq(static_cast<double>(out.size()), static_cast<double>(c),
                "reduce_scatter size");
      for (std::size_t i = 0; i < out.size(); ++i)
        expect_eq(out[i], member_weight(fiber), "reduce_scatter");
      break;
    }
    case 4: {  // scatter on the rank prefix [0, a), root = prefix rank 0
      Comm g = world.range(0, rd.a);
      if (!g.is_member()) break;
      const Counts counts(static_cast<std::size_t>(rd.a), 2);
      Buffer all;
      if (g.rank() == 0) {
        std::vector<double> v;
        for (int i = 0; i < rd.a; ++i) {
          v.push_back(static_cast<double>(i));
          v.push_back(static_cast<double>(i));
        }
        all = Buffer(std::move(v));
      }
      const Buffer out = coll::scatter(g, 0, std::move(all), counts);
      for (std::size_t i = 0; i < out.size(); ++i)
        expect_eq(out[i], static_cast<double>(me), "scatter");
      break;
    }
    case 5: {  // world gather at a rotating root
      const int root = rd.b % p;
      const Counts counts(static_cast<std::size_t>(p), 1);
      const Buffer out = coll::gather(
          world, root,
          Buffer(std::vector<double>{static_cast<double>(me)}), counts);
      if (me == root) {
        expect_eq(static_cast<double>(out.size()), static_cast<double>(p),
                  "gather size");
        for (std::size_t i = 0; i < out.size(); ++i)
          expect_eq(out[i], static_cast<double>(i), "gather");
      }
      break;
    }
    default: {  // bcast on stride-a fibers, then a world barrier
      Comm fiber = world.strided_fiber(rd.a);
      const double root_id = me % rd.a;  // fiber member 0's world rank
      const Buffer out = coll::bcast(
          fiber, 0,
          fiber.rank() == 0 ? Buffer(std::vector<double>(3, root_id))
                            : Buffer(),
          3);
      for (std::size_t i = 0; i < out.size(); ++i)
        expect_eq(out[i], root_id, "bcast");
      coll::barrier(world);
      break;
    }
  }
}

std::vector<Round> gen_script(std::mt19937_64& rng, int p) {
  const int rounds = std::uniform_int_distribution<int>(2, 5)(rng);
  std::vector<Round> script(static_cast<std::size_t>(rounds));
  for (Round& rd : script) {
    rd.kind = std::uniform_int_distribution<int>(0, 6)(rng);
    rd.b = std::uniform_int_distribution<int>(0, 1 << 20)(rng);
    switch (rd.kind) {
      case 0: rd.a = pick(rng, {1, 4, 9}); break;
      case 1:
      case 4: rd.a = std::uniform_int_distribution<int>(2, p)(rng); break;
      case 2:
      case 3:
      default: rd.a = pick(rng, {2, 3}); break;
    }
  }
  return script;
}

std::string describe_script(const std::vector<Round>& script) {
  static const char* kNames[] = {"allreduce", "allgather", "fiber-allreduce",
                                 "fiber-reduce-scatter", "scatter", "gather",
                                 "fiber-bcast+barrier"};
  std::string s;
  for (const Round& rd : script) {
    if (!s.empty()) s += " ";
    s += kNames[rd.kind];
  }
  return s;
}

bool run_one(std::uint64_t seed, const Options& opt) {
  std::mt19937_64 rng(seed);
  const int p = pick(rng, {4, 6, 8, 9, 12});
  const std::vector<Round> script = gen_script(rng, p);
  const auto body = [&script](Rank& r) {
    for (const Round& rd : script) run_round(r, rd);
  };

  Machine m(p);
  m.set_collective_checking(true);
  m.set_tracing(true, /*capture_payloads=*/true);

  const bool faulted = std::uniform_int_distribution<int>(0, 1)(rng) == 1;
  FaultPlan plan;
  if (faulted) {
    plan.cls = static_cast<FaultClass>(
        std::uniform_int_distribution<int>(0, 5)(rng));
    plan.seed = rng();
    plan.rate = static_cast<std::uint32_t>(pick(rng, {1, 2, 4, 8}));
    m.arm_fault(plan);
  }

  std::string outcome;
  bool completed = false;
  try {
    m.run(body);
    completed = true;
  } catch (const std::exception& e) {
    if (!faulted) {
      std::fprintf(stderr, "fuzz_coll: seed %llu (p=%d, %s): CLEAN run "
                   "failed:\n%s\n",
                   static_cast<unsigned long long>(seed), p,
                   describe_script(script).c_str(), e.what());
      return false;
    }
    const check::FaultReport report = check::report_fault(m, e);
    if (!report.detected()) {
      std::fprintf(stderr, "fuzz_coll: seed %llu (p=%d, %s): fault %s "
                   "ESCAPED as an unclassified error:\n%s\n",
                   static_cast<unsigned long long>(seed), p,
                   describe_script(script).c_str(), plan.describe().c_str(),
                   report.to_string().c_str());
      return false;
    }
    outcome = "detected by " + report.detector + " (" +
              std::to_string(report.injections) + " injections)";
  }

  if (faulted) m.disarm_fault();

  if (completed) {
    // A run that completed passed every exact in-body check (harmless or
    // unfired injections); its trace must replay bit-identically.
    check::Trace trace = m.take_trace();
    (void)check::replay(m, trace);
    outcome = faulted ? "completed correctly (fault landed harmlessly)"
                      : "completed + replayed";
  } else {
    // Graceful degradation: the same machine reruns the same script
    // cleanly, traces it completely, and the trace replays.
    m.run(body);
    check::Trace trace = m.take_trace();
    (void)check::replay(m, trace);
    outcome += "; clean rerun + replay ok";
  }

  if (opt.verbose)
    std::fprintf(stderr, "fuzz_coll: seed %llu ok (p=%d, %s%s): %s\n",
                 static_cast<unsigned long long>(seed), p,
                 describe_script(script).c_str(),
                 faulted ? (", fault " + plan.describe()).c_str() : "",
                 outcome.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      opt.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opt.verbose = true;
    } else {
      std::fprintf(stderr, "usage: %s [--runs N] [--seed S] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }

  int failures = 0;
  for (int i = 0; i < opt.runs; ++i) {
    const std::uint64_t seed = opt.seed + static_cast<std::uint64_t>(i);
    try {
      if (!run_one(seed, opt)) ++failures;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fuzz_coll: seed %llu faulted outside the run:\n%s\n",
                   static_cast<unsigned long long>(seed), e.what());
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "fuzz_coll: %d of %d runs FAILED\n", failures,
                 opt.runs);
    return 1;
  }
  std::printf("fuzz_coll: %d runs passed (seed %llu)\n", opt.runs,
              static_cast<unsigned long long>(opt.seed));
  return 0;
}
