// Tests for the baseline solvers: Heath-Romine 1D ring (trsv1d) and the
// conventional 2D block fan-out (trsm2d).

#include <gtest/gtest.h>

#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "la/trsm.hpp"
#include "sim/machine.hpp"
#include "trsm/trsm2d.hpp"
#include "trsm/trsv1d.hpp"

namespace catrsm::trsm {
namespace {

using dist::Face2D;
using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;
using sim::RunStats;

struct V1Case {
  index_t n, k;
  int p;
};

class Trsv1dSweep : public ::testing::TestWithParam<V1Case> {};

TEST_P(Trsv1dSweep, MatchesSequentialSolve) {
  const V1Case tc = GetParam();
  Machine m(tc.p);
  const Matrix l = la::make_lower_triangular(61, tc.n);
  const Matrix b = la::make_rhs(62, tc.n, tc.k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, tc.p, 1);
    auto ld = dist::cyclic_on(face, tc.n, tc.n);
    auto bd = dist::cyclic_on(face, tc.n, tc.k);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix db(bd, r.id());
    db.fill_from_global(b);
    DistMatrix dx = trsv1d(dl, db, world);
    EXPECT_LT(la::max_abs_diff(collect(dx, world), ref), 1e-10)
        << "n=" << tc.n << " k=" << tc.k << " p=" << tc.p;
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, Trsv1dSweep,
                         ::testing::Values(V1Case{8, 1, 1},
                                           V1Case{16, 1, 2},
                                           V1Case{16, 1, 4},
                                           V1Case{17, 1, 4},
                                           V1Case{32, 3, 4},
                                           V1Case{12, 1, 12},
                                           V1Case{64, 2, 8}));

TEST(Trsv1d, LatencyIsLinearInN) {
  // The latency wall: S grows linearly with n, which is why this classic
  // algorithm loses for k > 1. Doubling n should roughly double S.
  auto measure = [&](index_t n) {
    Machine m(4);
    const Matrix l = la::make_lower_triangular(63, n);
    const Matrix b = la::make_rhs(64, n, 1);
    return m.run([&](Rank& r) {
      Comm world = Comm::world(r);
      Face2D face(world, 4, 1);
      auto ld = dist::cyclic_on(face, n, n);
      auto bd = dist::cyclic_on(face, n, 1);
      DistMatrix dl(ld, r.id());
      dl.fill_from_global(l);
      DistMatrix db(bd, r.id());
      db.fill_from_global(b);
      (void)trsv1d(dl, db, world);
    });
  };
  const RunStats s32 = measure(32);
  const RunStats s64 = measure(64);
  EXPECT_GT(s64.max_msgs(), 1.7 * s32.max_msgs());
  EXPECT_LT(s64.max_msgs(), 2.3 * s32.max_msgs());
}

TEST(Trsv1d, SingularThrows) {
  Machine m(2);
  EXPECT_THROW(m.run([](Rank& r) {
                 Comm world = Comm::world(r);
                 Face2D face(world, 2, 1);
                 const index_t n = 4;
                 auto ld = dist::cyclic_on(face, n, n);
                 auto bd = dist::cyclic_on(face, n, 1);
                 DistMatrix dl(ld, r.id());
                 dl.fill([&](index_t i, index_t j) {
                   return i == j ? 0.0 : (j < i ? 1.0 : 0.0);
                 });
                 DistMatrix db(bd, r.id());
                 (void)trsv1d(dl, db, world);
               }),
               Error);
}

struct T2Case {
  index_t n, k;
  int pr, pc;
  index_t nb;
};

class Trsm2dSweep : public ::testing::TestWithParam<T2Case> {};

TEST_P(Trsm2dSweep, MatchesSequentialSolve) {
  const T2Case tc = GetParam();
  Machine m(tc.pr * tc.pc);
  const Matrix l = la::make_lower_triangular(71, tc.n);
  const Matrix b = la::make_rhs(72, tc.n, tc.k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, tc.pr, tc.pc);
    auto ld = dist::cyclic_on(face, tc.n, tc.n);
    auto bd = dist::cyclic_on(face, tc.n, tc.k);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix db(bd, r.id());
    db.fill_from_global(b);
    DistMatrix dx = trsm2d(dl, db, world, tc.nb);
    EXPECT_LT(la::max_abs_diff(collect(dx, world), ref), 1e-10)
        << "n=" << tc.n << " grid=" << tc.pr << "x" << tc.pc;
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, Trsm2dSweep,
                         ::testing::Values(T2Case{8, 4, 1, 1, 4},
                                           T2Case{16, 8, 2, 2, 4},
                                           T2Case{16, 8, 2, 2, 16},
                                           T2Case{17, 5, 2, 2, 4},
                                           T2Case{24, 8, 2, 3, 6},
                                           T2Case{32, 16, 4, 2, 8},
                                           T2Case{32, 4, 1, 4, 8}));

TEST(Trsm2d, AutoPanelWidthSolves) {
  const index_t n = 32, k = 8;
  Machine m(4);
  const Matrix l = la::make_lower_triangular(73, n);
  const Matrix b = la::make_rhs(74, n, k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 2, 2);
    auto ld = dist::cyclic_on(face, n, n);
    auto bd = dist::cyclic_on(face, n, k);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix db(bd, r.id());
    db.fill_from_global(b);
    DistMatrix dx = trsm2d(dl, db, world);
    EXPECT_LT(la::max_abs_diff(collect(dx, world), ref), 1e-10);
  });
}

TEST(Trsm2d, LatencyScalesWithPanelCount) {
  const index_t n = 64, k = 16;
  auto measure = [&](index_t nb) {
    Machine m(4);
    const Matrix l = la::make_lower_triangular(75, n);
    const Matrix b = la::make_rhs(76, n, k);
    return m.run([&](Rank& r) {
      Comm world = Comm::world(r);
      Face2D face(world, 2, 2);
      auto ld = dist::cyclic_on(face, n, n);
      auto bd = dist::cyclic_on(face, n, k);
      DistMatrix dl(ld, r.id());
      dl.fill_from_global(l);
      DistMatrix db(bd, r.id());
      db.fill_from_global(b);
      (void)trsm2d(dl, db, world, nb);
    });
  };
  const RunStats coarse = measure(32);
  const RunStats fine = measure(4);
  EXPECT_GT(fine.max_msgs(), 3.0 * coarse.max_msgs());
}

}  // namespace
}  // namespace catrsm::trsm
