// Tests for the handle-based plan/execute API: plan caching, diagonal-
// inverse reuse across executes and batches, the BLAS option matrix
// through Context/Plan, and the non-TRSM ops (triangular inverse, the
// Cholesky pipeline, 3D/2D matmul).

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "api/catrsm.hpp"
#include "la/gemm.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "la/tri_inv.hpp"
#include "la/trsm.hpp"
#include "trsm/solver.hpp"

namespace catrsm::api {
namespace {

using la::index_t;
using la::Matrix;

TEST(PlanCache, SecondPlanForSameOpHitsAndReturnsSameHandle) {
  Context ctx(8);
  const OpDesc d = trsm_op(32, 8);
  auto p1 = ctx.plan(d);
  EXPECT_EQ(ctx.cache_stats().hits, 0u);
  EXPECT_EQ(ctx.cache_stats().misses, 1u);
  auto p2 = ctx.plan(d);
  EXPECT_EQ(ctx.cache_stats().hits, 1u);
  EXPECT_EQ(ctx.cache_stats().misses, 1u);
  // A cache hit is the SAME plan object, so the frozen Config is
  // bit-identical by construction.
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(p1->config().algorithm, p2->config().algorithm);
  EXPECT_EQ(p1->config().p1, p2->config().p1);
  EXPECT_EQ(p1->config().nblocks, p2->config().nblocks);
}

TEST(PlanCache, HitPlanProducesBitIdenticalResults) {
  const index_t n = 32, k = 8;
  const Matrix l = la::make_lower_triangular(301, n);
  const Matrix b = la::make_rhs(302, n, k);
  Context ctx(8);
  ExecResult r1 = ctx.plan(trsm_op(n, k))->execute(l, b);
  // Plan again (cache hit) and execute: identical configuration and
  // bit-identical solution.
  ExecResult r2 = ctx.plan(trsm_op(n, k))->execute(l, b);
  EXPECT_EQ(ctx.cache_stats().hits, 1u);
  EXPECT_EQ(r1.config.algorithm, r2.config.algorithm);
  EXPECT_EQ(r1.config.nblocks, r2.config.nblocks);
  EXPECT_EQ(r1.config.p1, r2.config.p1);
  EXPECT_EQ(r1.config.p2, r2.config.p2);
  EXPECT_TRUE(r1.x.equals(r2.x));
}

TEST(PlanCache, KeyDistinguishesShapeOptionsAndMachine) {
  Context ctx(8);
  (void)ctx.plan(trsm_op(32, 8));
  (void)ctx.plan(trsm_op(32, 9));  // different k
  TrsmSpec upper;
  upper.uplo = la::Uplo::kUpper;
  (void)ctx.plan(trsm_op(32, 8, upper));  // different variant
  (void)ctx.plan(tri_inv_op(32));         // different op
  EXPECT_EQ(ctx.cache_stats().hits, 0u);
  EXPECT_EQ(ctx.cache_stats().misses, 4u);
  EXPECT_EQ(ctx.cache_stats().entries, 4u);
}

TEST(PlanCache, LruEvictsBeyondCapacity) {
  Context ctx(4, sim::MachineParams{}, /*plan_cache_capacity=*/2);
  (void)ctx.plan(trsm_op(16, 2));
  (void)ctx.plan(trsm_op(16, 3));
  (void)ctx.plan(trsm_op(16, 4));  // evicts (16, 2)
  EXPECT_EQ(ctx.cache_stats().evictions, 1u);
  EXPECT_EQ(ctx.cache_stats().entries, 2u);
  (void)ctx.plan(trsm_op(16, 2));  // miss again
  EXPECT_EQ(ctx.cache_stats().misses, 4u);
  EXPECT_EQ(ctx.cache_stats().hits, 0u);
}

TEST(DiagReuse, RepeatedExecutesInvertDiagonalOnce) {
  const index_t n = 32, k = 8;
  const Matrix l = la::make_lower_triangular(303, n);
  const Matrix b1 = la::make_rhs(304, n, k);
  const Matrix b2 = la::make_rhs(305, n, k);
  Context ctx(8);
  TrsmSpec spec;
  spec.force_algorithm = true;
  spec.algorithm = model::Algorithm::kIterative;
  auto plan = ctx.plan(trsm_op(n, k, spec));
  ExecResult r1 = plan->execute(l, b1);
  EXPECT_EQ(plan->diag_inversions(), 1u);
  EXPECT_EQ(r1.stats.phase_max.count("inversion"), 1u);
  ExecResult r2 = plan->execute(l, b2);
  EXPECT_EQ(plan->diag_inversions(), 1u);  // reused, not recomputed
  EXPECT_EQ(r2.stats.phase_max.count("inversion"), 0u);
  EXPECT_LT(r1.residual, 1e-12);
  EXPECT_LT(r2.residual, 1e-12);
  // A different operand re-inverts.
  const Matrix l2 = la::make_lower_triangular(306, n);
  (void)plan->execute(l2, b1);
  EXPECT_EQ(plan->diag_inversions(), 2u);
}

TEST(DiagReuse, BatchMatchesIndependentSolvesBitwise) {
  const index_t n = 40, k = 5;
  const int p = 8;
  const Matrix l = la::make_lower_triangular(307, n);
  std::vector<Matrix> panels;
  for (int i = 0; i < 4; ++i)
    panels.push_back(la::make_rhs(400 + static_cast<std::uint64_t>(i), n, k));

  TrsmSpec spec;
  spec.force_algorithm = true;
  spec.algorithm = model::Algorithm::kIterative;
  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k, spec));
  const std::vector<ExecResult> batch = plan->execute_batch(l, panels);
  ASSERT_EQ(batch.size(), panels.size());
  // Diagonal inversion ran exactly once for the whole batch...
  EXPECT_EQ(plan->diag_inversions(), 1u);
  for (std::size_t i = 1; i < batch.size(); ++i)
    EXPECT_EQ(batch[i].stats.phase_max.count("inversion"), 0u);

  // ...yet every panel's solution and residual match an independent
  // plain solve() bit for bit.
  for (std::size_t i = 0; i < panels.size(); ++i) {
    trsm::SolveOptions opts;
    opts.force_algorithm = true;
    opts.algorithm = model::Algorithm::kIterative;
    const trsm::SolveResult ref = trsm::solve(l, panels[i], p, opts);
    EXPECT_TRUE(batch[i].x.equals(ref.x)) << "panel " << i;
    EXPECT_EQ(batch[i].residual, ref.residual) << "panel " << i;
  }
}

struct VariantCase {
  la::Uplo uplo;
  bool trans;
  Side side;
  const char* name;
};

class ApiVariantSweep : public ::testing::TestWithParam<VariantCase> {};

TEST_P(ApiVariantSweep, SolvesAgainstDenseReference) {
  const VariantCase vc = GetParam();
  const index_t n = 24, k = 7;
  const Matrix t = vc.uplo == la::Uplo::kLower
                       ? la::make_lower_triangular(311, n)
                       : la::make_upper_triangular(312, n);
  const Matrix b = vc.side == Side::kLeft ? la::make_rhs(313, n, k)
                                          : la::make_rhs(314, k, n);

  TrsmSpec spec;
  spec.uplo = vc.uplo;
  spec.transpose = vc.trans;
  spec.side = vc.side;
  Context ctx(4);
  const index_t kernel_k = vc.side == Side::kLeft ? k : b.rows();
  const ExecResult r = ctx.plan(trsm_op(n, kernel_k, spec))->execute(t, b);

  // Dense reference: op(T) X = B (left) or X op(T) = B (right), solved by
  // the sequential kernels.
  const Matrix op = vc.trans ? t.transposed() : t;
  Matrix ref;
  const bool op_lower = (vc.uplo == la::Uplo::kLower) != vc.trans;
  if (vc.side == Side::kLeft) {
    ref = op_lower ? la::solve_lower(op, b) : la::solve_upper(op, b);
  } else {
    // X op(T) = B  <=>  op(T)^T X^T = B^T.
    const Matrix opt = op.transposed();
    const Matrix bt = b.transposed();
    ref = (op_lower ? la::solve_upper(opt, bt) : la::solve_lower(opt, bt))
              .transposed();
  }
  EXPECT_LT(la::max_abs_diff(r.x, ref), 1e-9) << vc.name;
  EXPECT_LT(r.residual, 1e-11) << vc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ApiVariantSweep,
    ::testing::Values(
        VariantCase{la::Uplo::kLower, false, Side::kLeft, "L X = B"},
        VariantCase{la::Uplo::kLower, true, Side::kLeft, "L^T X = B"},
        VariantCase{la::Uplo::kUpper, false, Side::kLeft, "U X = B"},
        VariantCase{la::Uplo::kUpper, true, Side::kLeft, "U^T X = B"},
        VariantCase{la::Uplo::kLower, false, Side::kRight, "X L = B"},
        VariantCase{la::Uplo::kLower, true, Side::kRight, "X L^T = B"},
        VariantCase{la::Uplo::kUpper, false, Side::kRight, "X U = B"},
        VariantCase{la::Uplo::kUpper, true, Side::kRight, "X U^T = B"}));

TEST(ApiOps, TriInvMatchesSequential) {
  const index_t n = 24;
  const Matrix l = la::make_lower_triangular(321, n);
  Context ctx(4);
  const ExecResult r = ctx.plan(tri_inv_op(n))->execute(l);
  EXPECT_LT(r.residual, 1e-11);
  const Matrix seq = la::tri_inv(la::Uplo::kLower, l);
  EXPECT_LT(la::max_abs_diff(r.x, seq), 1e-9);
}

TEST(ApiOps, CholeskySolvePipelineSolvesSpdSystem) {
  const index_t n = 48, k = 6;
  const Matrix a = la::make_spd(323, n);
  const Matrix b = la::make_rhs(324, n, k);
  Context ctx(16);
  const ExecResult r = ctx.plan(cholesky_solve_op(n, k))->execute(a, b);
  EXPECT_LT(r.residual, 1e-10);
  // The pipeline reports its three stages.
  EXPECT_EQ(r.stats.phase_max.count("cholesky"), 1u);
  EXPECT_EQ(r.stats.phase_max.count("forward-trsm"), 1u);
  EXPECT_EQ(r.stats.phase_max.count("backward-trsm"), 1u);
  Matrix resid = la::matmul(a, r.x);
  resid.sub(b);
  EXPECT_LT(la::frobenius_norm(resid) / la::frobenius_norm(b), 1e-10);
}

TEST(ApiOps, CholeskySolveFromGenerators) {
  // Generator-fed execution: ranks fill only what they own; the result
  // matches the matrix-fed path exactly.
  const index_t n = 24, k = 4;
  const auto a_gen = [n](index_t i, index_t j) {
    if (i == j) return 4.0 + la::element_hash(5, i, i) * 0.5;
    return la::element_hash(5, std::min(i, j), std::max(i, j)) /
           static_cast<double>(n);
  };
  const auto b_gen = [](index_t i, index_t j) {
    return la::rhs_entry(6, i, j);
  };
  Matrix a(n, n), b(n, k);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = a_gen(i, j);
    for (index_t j = 0; j < k; ++j) b(i, j) = b_gen(i, j);
  }
  Context ctx(4);
  auto plan = ctx.plan(cholesky_solve_op(n, k));
  const ExecResult gen = plan->execute_generated(a_gen, b_gen);
  const ExecResult mat = plan->execute(a, b);
  EXPECT_LT(gen.residual, 1e-12);
  EXPECT_TRUE(gen.x.equals(mat.x));
  // Only the cholesky op accepts generators.
  auto trsm_plan = ctx.plan(trsm_op(n, k));
  EXPECT_THROW((void)trsm_plan->execute_generated(a_gen, b_gen), Error);
}

TEST(ApiOps, CholeskySolveOnNonSquareRankCount) {
  // p = 6: the pipeline runs on the 2 x 2 subgrid, surplus ranks idle.
  const index_t n = 20, k = 4;
  const Matrix a = la::make_spd(325, n);
  const Matrix b = la::make_rhs(326, n, k);
  Context ctx(6);
  const ExecResult r = ctx.plan(cholesky_solve_op(n, k))->execute(a, b);
  EXPECT_EQ(r.config.p1, 2);
  EXPECT_LT(r.residual, 1e-10);
}

TEST(ApiOps, Matmul3DMatchesSequentialGemm) {
  const index_t m = 24, inner = 16, k = 8;
  const Matrix a = la::make_dense(331, m, inner);
  const Matrix x = la::make_dense(332, inner, k);
  Context ctx(8);
  auto plan = ctx.plan(matmul3d_op(m, inner, k));
  EXPECT_EQ(plan->config().p1 * plan->config().p1 * plan->config().p2, 8);
  const ExecResult r = plan->execute(a, x);
  EXPECT_LT(la::max_abs_diff(r.x, la::matmul(a, x)), 1e-11);
}

TEST(ApiOps, Matmul2DMatchesSequentialGemm) {
  const index_t n = 16, k = 12;
  const Matrix a = la::make_dense(333, n, n);
  const Matrix x = la::make_dense(334, n, k);
  Context ctx(6);
  const ExecResult r = ctx.plan(matmul2d_op(n, k))->execute(a, x);
  EXPECT_LT(la::max_abs_diff(r.x, la::matmul(a, x)), 1e-11);
}

TEST(ApiOps, ExecuteRejectsMismatchedShapes) {
  Context ctx(4);
  auto plan = ctx.plan(trsm_op(16, 4));
  const Matrix l = la::make_lower_triangular(341, 16);
  const Matrix wrong_b = la::make_rhs(342, 16, 5);
  EXPECT_THROW((void)plan->execute(l, wrong_b), Error);
  const Matrix wrong_l = la::make_lower_triangular(343, 12);
  EXPECT_THROW((void)plan->execute(wrong_l, la::make_rhs(344, 12, 4)),
               Error);
}

TEST(ApiShim, LegacySolveMatchesPlanPathBitwise) {
  const index_t n = 20, k = 5;
  const Matrix l = la::make_lower_triangular(351, n);
  const Matrix b = la::make_rhs(352, n, k);
  const trsm::SolveResult legacy = trsm::solve(l, b, 8);
  Context ctx(8);
  const ExecResult direct =
      ctx.plan(trsm_op(n, k))->execute(l, b);
  EXPECT_TRUE(legacy.x.equals(direct.x));
  EXPECT_EQ(legacy.config.algorithm, direct.config.algorithm);
  EXPECT_EQ(legacy.residual, direct.residual);
}

TEST(ApiContext, BorrowedMachineIsReused) {
  sim::Machine machine(4);
  Context ctx(machine);
  EXPECT_EQ(&ctx.machine(), &machine);
  EXPECT_EQ(ctx.nprocs(), 4);
  const Matrix l = la::make_lower_triangular(361, 16);
  const Matrix b = la::make_rhs(362, 16, 4);
  const ExecResult r = ctx.plan(trsm_op(16, 4))->execute(l, b);
  EXPECT_LT(r.residual, 1e-12);
}

TEST(ApiScheduler, ExecuteBatchesReuseTheSameWorkerThreads) {
  const index_t n = 24, k = 6;
  const int p = 8;
  const Matrix l = la::make_lower_triangular(371, n);
  Context ctx(p);
  auto plan = ctx.plan(trsm_op(n, k));

  // Capture the pool's thread ids through the same scheduler the plan
  // executions use: worker i always runs rank i.
  auto capture = [&] {
    std::vector<std::thread::id> ids(static_cast<std::size_t>(p));
    ctx.machine().run([&](sim::Rank& r) {
      ids[static_cast<std::size_t>(r.id())] = std::this_thread::get_id();
    });
    return ids;
  };

  const auto before = capture();
  const std::uint64_t runs_before = ctx.scheduler().runs();
  std::vector<Matrix> bs1, bs2;
  for (int i = 0; i < 3; ++i) {
    bs1.push_back(la::make_rhs(380 + i, n, k));
    bs2.push_back(la::make_rhs(390 + i, n, k));
  }
  (void)plan->execute_batch(l, bs1);
  (void)plan->execute_batch(l, bs2);
  const std::uint64_t runs_after = ctx.scheduler().runs();
  const auto after = capture();

  // Both batches dispatched onto the persistent pool (one run per item),
  // and the pool's workers are the very same OS threads afterwards: no
  // thread was spawned or torn down between the two batches.
  EXPECT_EQ(runs_after - runs_before, 6u);
  EXPECT_EQ(before, after);
  EXPECT_EQ(ctx.scheduler().size(), p);
}

}  // namespace
}  // namespace catrsm::api
