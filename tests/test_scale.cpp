// Larger-machine smoke tests: the algorithms must stay correct and keep
// their cost shapes at p = 128-256 simulated ranks, the largest scale the
// thread-per-rank simulator exercises routinely.

#include <gtest/gtest.h>

#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "la/norms.hpp"
#include "la/trsm.hpp"
#include "sim/machine.hpp"
#include "trsm/it_inv_trsm.hpp"
#include "trsm/rec_trsm.hpp"

namespace catrsm::trsm {
namespace {

using dist::Face2D;
using la::index_t;
using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;
using sim::RunStats;

TEST(Scale, ItInv128Ranks) {
  const index_t n = 96, k = 24;
  const int p1 = 4, p2 = 8;  // p = 128
  Machine m(p1 * p1 * p2);
  const Matrix l = la::make_lower_triangular(61, n);
  const Matrix b = la::make_rhs(62, n, k);
  const Matrix ref = la::solve_lower(l, b);
  RunStats stats = m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D lface = it_inv_l_face(world, p1, p2);
    auto ld = dist::cyclic_on(lface, n, n);
    DistMatrix dl(ld, r.id());
    if (dl.participates()) dl.fill_from_global(l);
    auto bd = it_inv_b_dist(world, p1, p2, n, k);
    DistMatrix db(bd, r.id());
    if (db.participates()) db.fill_from_global(b);
    ItInvOptions opts;
    opts.nblocks = 4;
    DistMatrix dx = it_inv_trsm(dl, db, world, p1, p2, opts);
    const Matrix got = collect(dx, world);
    ASSERT_LT(la::max_abs_diff(got, ref), 1e-9);
  });
  // Latency stays polylog-ish: far below the hundreds of rounds a
  // p-dependent schedule would need at p = 128.
  EXPECT_LT(stats.max_msgs(), 500.0);
}

TEST(Scale, RecTrsm256Ranks) {
  const index_t n = 64, k = 16;
  const int p = 256;
  Machine m(p);
  const Matrix l = la::make_lower_triangular(63, n);
  const Matrix b = la::make_rhs(64, n, k);
  const Matrix ref = la::solve_lower(l, b);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face(world, 16, 16);
    auto ld = dist::cyclic_on(face, n, n);
    auto bd = dist::cyclic_on(face, n, k);
    DistMatrix dl(ld, r.id());
    dl.fill_from_global(l);
    DistMatrix db(bd, r.id());
    db.fill_from_global(b);
    RecTrsmOptions opts;
    opts.n0 = 16;
    DistMatrix dx = rec_trsm(dl, db, world, opts);
    ASSERT_LT(la::max_abs_diff(collect(dx, world), ref), 1e-9);
  });
}

TEST(Scale, LatencyGapWidensFrom16To64) {
  // The conclusion-table trend at runnable scale with the Section VIII
  // auto-tuned parameters (the E7 bench configuration): the
  // iterative/recursive latency ratio must grow with p in the 3D regime.
  const index_t n = 128, k = 32;
  const Matrix l = la::make_lower_triangular(65, n);
  const Matrix b = la::make_rhs(66, n, k);
  auto rec_s = [&](int pr) {
    Machine m(pr * pr);
    return m
        .run([&](Rank& r) {
          Comm world = Comm::world(r);
          Face2D face(world, pr, pr);
          auto ld = dist::cyclic_on(face, n, n);
          auto bd = dist::cyclic_on(face, n, k);
          DistMatrix dl(ld, r.id());
          dl.fill_from_global(l);
          DistMatrix db(bd, r.id());
          db.fill_from_global(b);
          (void)rec_trsm(dl, db, world);  // auto n0 per Section IV
        })
        .max_msgs();
  };
  auto it_s = [&](int p1, int p2) {
    Machine m(p1 * p1 * p2);
    return m
        .run([&](Rank& r) {
          Comm world = Comm::world(r);
          Face2D lface = it_inv_l_face(world, p1, p2);
          auto ld = dist::cyclic_on(lface, n, n);
          DistMatrix dl(ld, r.id());
          if (dl.participates()) dl.fill_from_global(l);
          auto bd = it_inv_b_dist(world, p1, p2, n, k);
          DistMatrix db(bd, r.id());
          if (db.participates()) db.fill_from_global(b);
          (void)it_inv_trsm(dl, db, world, p1, p2);  // auto nblocks
        })
        .max_msgs();
  };
  const double gain16 = rec_s(4) / it_s(2, 4);
  const double gain64 = rec_s(8) / it_s(4, 4);
  EXPECT_GT(gain16, 2.0);
  EXPECT_GT(gain64, 2.0 * gain16);
}

}  // namespace
}  // namespace catrsm::trsm
