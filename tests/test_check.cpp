// The simulator correctness oracle (sim/check): wait-for-graph deadlock
// detection under both scheduler backends, collective-matching
// validation, trace capture / deterministic replay, and validated
// environment-variable parsing.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "coll/collectives.hpp"
#include "sim/check/coll_matcher.hpp"
#include "sim/check/deadlock.hpp"
#include "sim/check/fault_report.hpp"
#include "sim/check/trace.hpp"
#include "sim/comm.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "support/env.hpp"

namespace {

using catrsm::Error;
using catrsm::sim::Buffer;
using catrsm::sim::Comm;
using catrsm::sim::Machine;
using catrsm::sim::Rank;
using catrsm::sim::RunStats;
using catrsm::sim::check::CollMismatchError;
using catrsm::sim::check::DeadlockError;
namespace coll = catrsm::coll;
namespace check = catrsm::sim::check;
namespace env = catrsm::env;

/// Set an environment variable for the current scope, restoring the
/// previous state (value or absence) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) old_ = old;
    setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  bool had_ = false;
  std::string old_;
};

/// Run `fn` on `m` and return the DeadlockError dump it must fault with.
template <typename Fn>
std::string expect_deadlock(Machine& m, Fn fn) {
  try {
    m.run(fn);
  } catch (const DeadlockError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "faulted with the wrong exception type: " << e.what();
    return {};
  }
  ADD_FAILURE() << "run completed instead of faulting with DeadlockError";
  return {};
}

void ping_pong_works(Machine& m) {
  const RunStats stats = m.run([](Rank& r) {
    if (r.id() == 0) {
      r.send(1, std::vector<double>{42.0}, 7);
    } else if (r.id() == 1) {
      const Buffer got = r.recv(0, 7);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 42.0);
    }
  });
  EXPECT_EQ(stats.per_rank[0].msgs, 1.0);
}

// ---------------------------------------------------------------------------
// Deadlock detection

void recv_cycle_body(Rank& r) {
  // Every rank waits for its right neighbor: a pure p-cycle, no message
  // ever in flight.
  (void)r.recv((r.id() + 1) % r.nprocs(), 5);
}

TEST(Deadlock, RecvCycleFaultsWithDiagnostics) {
  Machine m(4);
  const std::string dump = expect_deadlock(m, recv_cycle_body);
  EXPECT_NE(dump.find("simulated run deadlocked"), std::string::npos) << dump;
  EXPECT_NE(dump.find("rank 0: blocked in recv from rank 1, tag 5"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("rank 3: blocked in recv from rank 0"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("0 -> 1 -> 2 -> 3 -> 0"), std::string::npos) << dump;
  EXPECT_NE(dump.find("starved"), std::string::npos) << dump;
}

TEST(Deadlock, RecvCycleFaultsUnderThreadBackend) {
  ScopedEnv no_fibers("CATRSM_SIM_FIBERS", "0");
  Machine m(4);  // scheduler is created lazily, so the override applies
  const std::string dump = expect_deadlock(m, recv_cycle_body);
  EXPECT_NE(dump.find("0 -> 1 -> 2 -> 3 -> 0"), std::string::npos) << dump;
}

TEST(Deadlock, WaitingOnFinishedRankFaults) {
  Machine m(2);
  const std::string dump = expect_deadlock(m, [](Rank& r) {
    if (r.id() == 1) (void)r.recv(0, 3);  // rank 0 exits without sending
  });
  EXPECT_NE(dump.find("rank 0: finished"), std::string::npos) << dump;
  EXPECT_NE(dump.find("sender already finished"), std::string::npos) << dump;
}

TEST(Deadlock, PendingMismatchedTagIsReported) {
  Machine m(2);
  const std::string dump = expect_deadlock(m, [](Rank& r) {
    if (r.id() == 0) {
      r.send(1, std::vector<double>{1.0, 2.0}, 7);  // wrong tag: 1 wants 8
      (void)r.recv(1, 9);
    } else {
      (void)r.recv(0, 8);
    }
  });
  EXPECT_NE(dump.find("blocked in recv from rank 0, tag 8"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("pending (unmatched) mailbox contents"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("rank 1 <- rank 0, tag 7: 1 message, 2 words"),
            std::string::npos)
      << dump;
}

TEST(Deadlock, MachineStaysUsableAfterFault) {
  Machine m(2);
  (void)expect_deadlock(m, [](Rank& r) {
    if (r.id() == 0) (void)r.recv(1, 1);
    if (r.id() == 1) (void)r.recv(0, 1);
  });
  ping_pong_works(m);
  // And a second fault on the same machine is detected again.
  const std::string dump = expect_deadlock(m, recv_cycle_body);
  EXPECT_NE(dump.find("0 -> 1 -> 0"), std::string::npos) << dump;
  ping_pong_works(m);
}

TEST(Deadlock, ThrownRankErrorStillWinsOverAbort) {
  // A rank that throws aborts the others mid-recv; the original error —
  // not a deadlock or a generic abort — must be what run() rethrows.
  Machine m(2);
  try {
    m.run([](Rank& r) {
      if (r.id() == 0) throw Error("rank 0 exploded");
      (void)r.recv(0, 1);
    });
    FAIL() << "run completed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("exploded"), std::string::npos);
  }
  ping_pong_works(m);
}

// ---------------------------------------------------------------------------
// Collective matching

TEST(CollMatch, OperationSequenceMismatchFaults) {
  Machine m(4);
  m.set_collective_checking(true);
  try {
    m.run([](Rank& r) {
      Comm world = Comm::world(r);
      const coll::Counts counts(4, 4);
      if (r.id() == 0) {
        (void)coll::allgather(world, Buffer(std::vector<double>(4, 1.0)),
                              counts);
      } else {
        (void)coll::reduce_scatter(world,
                                   Buffer(std::vector<double>(16, 1.0)),
                                   counts);
      }
    });
    FAIL() << "run completed instead of faulting with CollMismatchError";
  } catch (const CollMismatchError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("collective mismatch on comm {0 1 2 3}"),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("operation sequence disagrees"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("allgather"), std::string::npos) << msg;
    EXPECT_NE(msg.find("reduce_scatter"), std::string::npos) << msg;
  }
  // The machine survives the fault for further (checked) runs.
  m.run([](Rank& r) {
    Comm world = Comm::world(r);
    (void)coll::allreduce(world, Buffer(std::vector<double>(4, 1.0)));
  });
}

TEST(CollMatch, CountsMismatchFaults) {
  Machine m(2);
  m.set_collective_checking(true);
  try {
    m.run([](Rank& r) {
      Comm world = Comm::world(r);
      // Rank 0 splits 8 words as [4 4], rank 1 as [2 6]: same op, same
      // total, different per-rank counts — exactly the bug class that
      // otherwise scrambles payload boundaries silently.
      const coll::Counts counts = r.id() == 0 ? coll::Counts{4, 4}
                                              : coll::Counts{2, 6};
      (void)coll::allgather(
          world,
          Buffer(std::vector<double>(counts[static_cast<std::size_t>(
                                         r.id())],
                                     1.0)),
          counts);
    });
    FAIL() << "run completed instead of faulting with CollMismatchError";
  } catch (const CollMismatchError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("per-rank counts disagree"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[4 4]"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[2 6]"), std::string::npos) << msg;
  }
}

TEST(CollMatch, RootMismatchFaults) {
  Machine m(2);
  m.set_collective_checking(true);
  try {
    m.run([](Rank& r) {
      Comm world = Comm::world(r);
      const coll::Counts counts{2, 2};
      (void)coll::scatter(world, /*root=*/r.id(),
                          Buffer(std::vector<double>(4, 1.0)), counts);
    });
    FAIL() << "run completed instead of faulting with CollMismatchError";
  } catch (const CollMismatchError& e) {
    EXPECT_NE(std::string(e.what()).find("roots disagree"),
              std::string::npos)
        << e.what();
  }
}

void mismatched_members_body(Rank& r) {
  // Rank 2 believes the communicator is {0, 1, 2}; everyone else uses the
  // world {0, 1, 2, 3}. Distinct member lists get distinct epochs, so no
  // message ever cross-matches and the run stalls — the detector must
  // fault with both sides' collective contexts in the dump.
  if (r.id() == 2) {
    Comm wrong(r, {0, 1, 2});
    (void)coll::allgather_equal(wrong, Buffer(std::vector<double>(4, 1.0)));
  } else {
    Comm world = Comm::world(r);
    (void)coll::allgather_equal(world, Buffer(std::vector<double>(4, 1.0)));
  }
}

TEST(CollMatch, MismatchedMembersDeadlocksWithBothMemberLists) {
  Machine m(4);
  m.set_collective_checking(true);
  const std::string dump = expect_deadlock(m, mismatched_members_body);
  EXPECT_NE(dump.find("allgather #0 on comm {0 1 2 3}"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("allgather #0 on comm {0 1 2}"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("comm epoch"), std::string::npos) << dump;
}

TEST(CollMatch, MismatchedMembersFaultUnderThreadBackend) {
  ScopedEnv no_fibers("CATRSM_SIM_FIBERS", "0");
  Machine m(4);
  m.set_collective_checking(true);
  const std::string dump = expect_deadlock(m, mismatched_members_body);
  EXPECT_NE(dump.find("on comm {0 1 2}"), std::string::npos) << dump;
  EXPECT_NE(dump.find("on comm {0 1 2 3}"), std::string::npos) << dump;
}

TEST(CollMatch, MatchedCollectivesAddNoModeledCost) {
  // The oracle observes, never participates: identical runs with
  // checking off and on must produce byte-identical modeled S/W/F and
  // virtual times.
  const auto body = [](Rank& r) {
    Comm world = Comm::world(r);
    Buffer sum = coll::allreduce(world, Buffer(std::vector<double>(8, 1.0)));
    (void)coll::bcast(world, 0, r.id() == 0 ? std::move(sum) : Buffer(), 8);
    coll::barrier(world);
  };
  Machine plain(4);
  const RunStats off = plain.run(body);
  Machine checked(4);
  checked.set_collective_checking(true);
  const RunStats on = checked.run(body);
  ASSERT_EQ(off.per_rank.size(), on.per_rank.size());
  for (std::size_t i = 0; i < off.per_rank.size(); ++i) {
    EXPECT_EQ(off.per_rank[i].msgs, on.per_rank[i].msgs);
    EXPECT_EQ(off.per_rank[i].words, on.per_rank[i].words);
    EXPECT_EQ(off.per_rank[i].flops, on.per_rank[i].flops);
  }
  EXPECT_EQ(off.critical_time, on.critical_time);
}

// ---------------------------------------------------------------------------
// Trace capture and replay

void traced_body(Rank& r) {
  Comm world = Comm::world(r);
  std::vector<double> mine(4, static_cast<double>(r.id() + 1));
  Buffer sum = coll::allreduce(world, Buffer(std::move(mine)));
  (void)sum;
  r.charge_flops(100.0 * (r.id() + 1));
  if (r.id() == 0) r.send(3, std::vector<double>{3.5, 4.5}, 11);
  if (r.id() == 3) (void)r.recv(0, 11);
}

TEST(Trace, CaptureThenReplayIsBitIdentical) {
  Machine m(4);
  m.set_tracing(true, /*capture_payloads=*/true);
  const RunStats live = m.run(traced_body);
  check::Trace trace = m.take_trace();
  m.set_tracing(false);

  ASSERT_EQ(trace.p, 4);
  ASSERT_TRUE(trace.payloads);
  // replay() itself faults on any payload, S/W/F, or clock divergence.
  const RunStats replayed = check::replay(m, trace);
  EXPECT_EQ(replayed.critical_time, live.critical_time);
  for (std::size_t i = 0; i < live.per_rank.size(); ++i) {
    EXPECT_EQ(replayed.per_rank[i].msgs, live.per_rank[i].msgs);
    EXPECT_EQ(replayed.per_rank[i].words, live.per_rank[i].words);
    EXPECT_EQ(replayed.per_rank[i].flops, live.per_rank[i].flops);
  }
}

TEST(Trace, SaveLoadRoundTripsExactly) {
  Machine m(4);
  m.set_tracing(true, /*capture_payloads=*/true);
  (void)m.run(traced_body);
  const check::Trace trace = m.take_trace();
  m.set_tracing(false);

  const std::string path =
      testing::TempDir() + "catrsm_trace_roundtrip.ctrc";
  trace.save(path);
  const check::Trace loaded = check::Trace::load(path);
  std::remove(path.c_str());

  EXPECT_EQ(check::diff(trace, loaded), "");
  // The loaded trace is itself replayable.
  (void)check::replay(m, loaded);
}

TEST(Trace, TamperedPayloadFaultsOnReplay) {
  Machine m(2);
  m.set_tracing(true, /*capture_payloads=*/true);
  (void)m.run([](Rank& r) {
    if (r.id() == 0) r.send(1, std::vector<double>{1.0, 2.0, 3.0}, 4);
    if (r.id() == 1) (void)r.recv(0, 4);
  });
  check::Trace trace = m.take_trace();
  m.set_tracing(false);

  bool tampered = false;
  for (auto& stream : trace.events) {
    for (auto& ev : stream) {
      if (ev.kind == check::EventKind::kSend && !ev.payload.empty()) {
        ev.payload[0] += 1.0;  // recorded hashes now disagree
        tampered = true;
        break;
      }
    }
    if (tampered) break;
  }
  ASSERT_TRUE(tampered);
  try {
    (void)check::replay(m, trace);
    FAIL() << "replay accepted a tampered trace";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("payload bytes differ"),
              std::string::npos)
        << e.what();
  }
}

TEST(Trace, DiffPinpointsFirstDivergence) {
  Machine m(2);
  m.set_tracing(true, /*capture_payloads=*/true);
  (void)m.run([](Rank& r) {
    if (r.id() == 0) r.send(1, std::vector<double>{1.0}, 4);
    if (r.id() == 1) (void)r.recv(0, 4);
  });
  check::Trace a = m.take_trace();
  m.set_tracing(false);
  check::Trace b = a;
  EXPECT_EQ(check::diff(a, b), "");
  b.events[1][0].hash ^= 1;
  const std::string d = check::diff(a, b);
  EXPECT_NE(d.find("rank 1"), std::string::npos) << d;
  EXPECT_NE(d.find("event 0"), std::string::npos) << d;
}

TEST(Trace, TracingAddsNoModeledCost) {
  Machine plain(4);
  const RunStats off = plain.run(traced_body);
  Machine traced(4);
  traced.set_tracing(true, /*capture_payloads=*/true);
  const RunStats on = traced.run(traced_body);
  EXPECT_EQ(off.critical_time, on.critical_time);
  for (std::size_t i = 0; i < off.per_rank.size(); ++i) {
    EXPECT_EQ(off.per_rank[i].msgs, on.per_rank[i].msgs);
    EXPECT_EQ(off.per_rank[i].words, on.per_rank[i].words);
    EXPECT_EQ(off.per_rank[i].flops, on.per_rank[i].flops);
  }
}

TEST(Trace, MachineReusableAfterFaultWithMatcherAndTracingOn) {
  // The hardest reuse case: a run faults with BOTH oracles armed. The
  // torso trace must be refused (not silently replayed), and the next
  // run on the same machine must trace, match, and replay cleanly.
  using catrsm::sim::FaultClass;
  using catrsm::sim::FaultPlan;
  Machine m(4);
  m.set_collective_checking(true);
  m.set_tracing(true, /*capture_payloads=*/true);

  m.arm_fault(FaultPlan{FaultClass::kCorrupt, 13, /*rate=*/1});
  try {
    m.run(traced_body);
    FAIL() << "run completed under a rate-1 corruption fault";
  } catch (const std::exception& e) {
    const auto report = check::report_fault(m, e);
    EXPECT_EQ(report.detector, "payload-checksum") << report.to_string();
  }
  // The faulted run never finished: its trace is a torso, and handing it
  // out for replay would "validate" a run that did not happen.
  EXPECT_THROW((void)m.take_trace(), Error);
  m.disarm_fault();

  // Same machine, same oracles: a clean run records a complete,
  // replayable trace...
  const RunStats live = m.run(traced_body);
  check::Trace trace = m.take_trace();
  const RunStats replayed = check::replay(m, trace);
  EXPECT_EQ(replayed.critical_time, live.critical_time);

  // ...and the collective matcher still catches a real mismatch.
  m.set_tracing(false);
  try {
    m.run([](Rank& r) {
      Comm world = Comm::world(r);
      if (r.id() == 0) {
        (void)coll::allreduce(world, Buffer(std::vector<double>(4, 1.0)));
      } else {
        coll::barrier(world);
      }
    });
    FAIL() << "matcher missed an operation mismatch after fault recovery";
  } catch (const CollMismatchError&) {
  }
}

// ---------------------------------------------------------------------------
// Validated environment parsing

TEST(EnvParse, IntOrAcceptsWellFormedValues) {
  ScopedEnv v("CATRSM_TEST_KNOB", "8");
  EXPECT_EQ(env::int_or("CATRSM_TEST_KNOB", 3, 1, 100), 8);
}

TEST(EnvParse, IntOrFallsBackOnGarbage) {
  ScopedEnv v("CATRSM_TEST_KNOB", "banana");
  EXPECT_EQ(env::int_or("CATRSM_TEST_KNOB", 3, 1, 100), 3);
}

TEST(EnvParse, IntOrFallsBackOnTrailingGarbage) {
  ScopedEnv v("CATRSM_TEST_KNOB", "8threads");
  EXPECT_EQ(env::int_or("CATRSM_TEST_KNOB", 3, 1, 100), 3);
}

TEST(EnvParse, IntOrEnforcesRange) {
  {
    ScopedEnv v("CATRSM_TEST_KNOB", "0");
    EXPECT_EQ(env::int_or("CATRSM_TEST_KNOB", 3, 1, 100), 3);
  }
  {
    ScopedEnv v("CATRSM_TEST_KNOB", "-4");
    EXPECT_EQ(env::int_or("CATRSM_TEST_KNOB", 3, 1, 100), 3);
  }
  {
    ScopedEnv v("CATRSM_TEST_KNOB", "101");
    EXPECT_EQ(env::int_or("CATRSM_TEST_KNOB", 3, 1, 100), 3);
  }
}

TEST(EnvParse, IntOrUnsetIsSilentFallback) {
  unsetenv("CATRSM_TEST_KNOB");
  EXPECT_EQ(env::int_or("CATRSM_TEST_KNOB", 5, 1, 100), 5);
}

TEST(EnvParse, FlagOrParsesIntegersAndRejectsWords) {
  {
    ScopedEnv v("CATRSM_TEST_KNOB", "0");
    EXPECT_FALSE(env::flag_or("CATRSM_TEST_KNOB", true));
  }
  {
    ScopedEnv v("CATRSM_TEST_KNOB", "1");
    EXPECT_TRUE(env::flag_or("CATRSM_TEST_KNOB", false));
  }
  {
    ScopedEnv v("CATRSM_TEST_KNOB", "yes");
    EXPECT_TRUE(env::flag_or("CATRSM_TEST_KNOB", true));
    EXPECT_FALSE(env::flag_or("CATRSM_TEST_KNOB", false));
  }
}

TEST(EnvParse, SimWorkersGarbageStillRuns) {
  // End to end: a malformed worker-count override must warn and run on
  // the default pool, not crash or hang the scheduler.
  ScopedEnv v("CATRSM_SIM_WORKERS", "lots");
  Machine m(4);
  ping_pong_works(m);
}

}  // namespace
