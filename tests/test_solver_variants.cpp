// Tests for the BLAS-style solver variants: upper triangles, transposed
// operands, and right-side solves — all reductions onto the distributed
// lower-left kernel.

#include <gtest/gtest.h>

#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "trsm/solver.hpp"

namespace catrsm::trsm {
namespace {

using la::index_t;
using la::Matrix;

struct VariantCase {
  la::Uplo uplo;
  bool trans;
  Side side;
  const char* name;
};

class VariantSweep : public ::testing::TestWithParam<VariantCase> {};

TEST_P(VariantSweep, SolvesItsSystem) {
  const VariantCase vc = GetParam();
  const index_t n = 24, k = 7;
  const Matrix t = vc.uplo == la::Uplo::kLower
                       ? la::make_lower_triangular(101, n)
                       : la::make_upper_triangular(102, n);
  const Matrix b = vc.side == Side::kLeft ? la::make_rhs(103, n, k)
                                          : la::make_rhs(104, k, n);

  SolveOptions opts;
  opts.uplo = vc.uplo;
  opts.transpose_l = vc.trans;
  opts.side = vc.side;
  const SolveResult r = solve(t, b, 4, opts);

  // Verify against the definition: op(T) X = B or X op(T) = B.
  const Matrix op = vc.trans ? t.transposed() : t;
  Matrix resid = vc.side == Side::kLeft ? la::matmul(op, r.x)
                                        : la::matmul(r.x, op);
  resid.sub(b);
  EXPECT_LT(la::frobenius_norm(resid) / la::frobenius_norm(b), 1e-12)
      << vc.name;
  EXPECT_LT(r.residual, 1e-11) << vc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantSweep,
    ::testing::Values(
        VariantCase{la::Uplo::kLower, false, Side::kLeft, "L X = B"},
        VariantCase{la::Uplo::kLower, true, Side::kLeft, "L^T X = B"},
        VariantCase{la::Uplo::kUpper, false, Side::kLeft, "U X = B"},
        VariantCase{la::Uplo::kUpper, true, Side::kLeft, "U^T X = B"},
        VariantCase{la::Uplo::kLower, false, Side::kRight, "X L = B"},
        VariantCase{la::Uplo::kLower, true, Side::kRight, "X L^T = B"},
        VariantCase{la::Uplo::kUpper, false, Side::kRight, "X U = B"},
        VariantCase{la::Uplo::kUpper, true, Side::kRight, "X U^T = B"}));

TEST(SolverVariants, UpperMatchesSequentialUpperSolve) {
  const index_t n = 20, k = 5;
  const Matrix u = la::make_upper_triangular(111, n);
  const Matrix b = la::make_rhs(112, n, k);
  SolveOptions opts;
  opts.uplo = la::Uplo::kUpper;
  const SolveResult r = solve(u, b, 4, opts);
  const Matrix ref = la::solve_upper(u, b);
  EXPECT_LT(la::max_abs_diff(r.x, ref), 1e-10);
}

TEST(SolverVariants, CholeskyRoundTripViaTransposedSolve) {
  // The full forward+back substitution pattern on one machine.
  const index_t n = 32, k = 6;
  const Matrix a = la::make_spd(113, n);
  const Matrix b = la::make_rhs(114, n, k);
  const Matrix l = la::cholesky(a);

  sim::Machine machine(8);
  const SolveResult fwd = solve_on(machine, l, b);
  SolveOptions back;
  back.transpose_l = true;
  const SolveResult bck = solve_on(machine, l, fwd.x, back);

  Matrix resid = la::matmul(a, bck.x);
  resid.sub(b);
  EXPECT_LT(la::frobenius_norm(resid) / la::frobenius_norm(b), 1e-11);
}

TEST(SolverVariants, TransposeCombinationsAreConsistent) {
  // (L^T)^... : solving with uplo=upper on L^T must equal solving the
  // transposed lower system directly.
  const index_t n = 16, k = 4;
  const Matrix l = la::make_lower_triangular(115, n);
  const Matrix b = la::make_rhs(116, n, k);

  SolveOptions as_trans_lower;
  as_trans_lower.transpose_l = true;
  const SolveResult r1 = solve(l, b, 4, as_trans_lower);

  SolveOptions as_upper;
  as_upper.uplo = la::Uplo::kUpper;
  const SolveResult r2 = solve(l.transposed(), b, 4, as_upper);

  EXPECT_LT(la::max_abs_diff(r1.x, r2.x), 1e-10);
}

TEST(SolverVariants, RightSolveDimensionsChecked) {
  const Matrix l = la::make_lower_triangular(117, 6);
  const Matrix b_bad(6, 4);  // right solve needs B with 6 *columns*
  SolveOptions opts;
  opts.side = Side::kRight;
  EXPECT_THROW(solve(l, b_bad, 2, opts), Error);
  const Matrix b_ok(4, 6);
  EXPECT_NO_THROW(solve(l, b_ok, 2, opts));
}

}  // namespace
}  // namespace catrsm::trsm
