// Cross-algorithm integration sweep: every distributed solver must produce
// the same answer as the sequential kernel on a broad grid of problem
// shapes and machine sizes — including awkward (prime, non-square,
// non-dividing) combinations the paper's pseudocode never has to face.

#include <gtest/gtest.h>

#include "la/generate.hpp"
#include "la/norms.hpp"
#include "la/trsm.hpp"
#include "trsm/solver.hpp"

namespace catrsm::trsm {
namespace {

using la::index_t;
using la::Matrix;

struct GridPoint {
  index_t n, k;
  int p;
};

class CrossAlgorithm : public ::testing::TestWithParam<GridPoint> {};

TEST_P(CrossAlgorithm, AllSolversAgreeWithSequential) {
  const GridPoint g = GetParam();
  const Matrix l = la::make_lower_triangular(201, g.n);
  const Matrix b = la::make_rhs(202, g.n, g.k);
  const Matrix ref = la::solve_lower(l, b);

  sim::Machine machine(g.p);
  for (const model::Algorithm a :
       {model::Algorithm::kIterative, model::Algorithm::kRecursive,
        model::Algorithm::kTrsm2D, model::Algorithm::kTrsv1D}) {
    SolveOptions opts;
    opts.force_algorithm = true;
    opts.algorithm = a;
    const SolveResult r = solve_on(machine, l, b, opts);
    EXPECT_LT(la::max_abs_diff(r.x, ref), 1e-8)
        << "n=" << g.n << " k=" << g.k << " p=" << g.p
        << " algo=" << model::algorithm_name(a);
    EXPECT_LT(r.residual, 1e-11)
        << "n=" << g.n << " k=" << g.k << " p=" << g.p
        << " algo=" << model::algorithm_name(a);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, CrossAlgorithm,
    ::testing::Values(GridPoint{1, 1, 1},      // degenerate
                      GridPoint{2, 1, 2},      // minimal parallel
                      GridPoint{7, 3, 3},      // all prime
                      GridPoint{16, 16, 4},    // square everything
                      GridPoint{31, 17, 5},    // prime sizes, prime p
                      GridPoint{24, 2, 6},     // skinny B
                      GridPoint{12, 40, 8},    // wide B
                      GridPoint{40, 10, 9},    // odd square p
                      GridPoint{33, 9, 12},    // composite non-pow2
                      GridPoint{64, 16, 16},   // pow2 everything
                      GridPoint{50, 50, 25},   // p = 5^2
                      GridPoint{29, 31, 32})); // p > n possible paths

TEST(Integration, ManyRanksFewRows) {
  // More processors than matrix rows: solvers must not deadlock or
  // misindex when some ranks own nothing.
  const index_t n = 6, k = 3;
  const Matrix l = la::make_lower_triangular(203, n);
  const Matrix b = la::make_rhs(204, n, k);
  const Matrix ref = la::solve_lower(l, b);
  for (const model::Algorithm a :
       {model::Algorithm::kIterative, model::Algorithm::kRecursive}) {
    SolveOptions opts;
    opts.force_algorithm = true;
    opts.algorithm = a;
    const SolveResult r = solve(l, b, 16, opts);
    EXPECT_LT(la::max_abs_diff(r.x, ref), 1e-9)
        << model::algorithm_name(a);
  }
}

TEST(Integration, RepeatedSolvesAccumulateNoState) {
  // Machine reuse across many solves with different shapes.
  sim::Machine machine(8);
  for (int round = 0; round < 5; ++round) {
    const index_t n = 8 + 7 * round;
    const index_t k = 3 + round;
    const Matrix l = la::make_lower_triangular(300 + round, n);
    const Matrix b = la::make_rhs(400 + round, n, k);
    const SolveResult r = solve_on(machine, l, b);
    EXPECT_LT(r.residual, 1e-12) << "round " << round;
  }
}

TEST(Integration, SingularMatrixFailsCleanlyAndMachineSurvives) {
  const index_t n = 12, k = 3;
  Matrix l = la::make_lower_triangular(205, n);
  l(7, 7) = 0.0;
  const Matrix b = la::make_rhs(206, n, k);
  sim::Machine machine(4);
  for (const model::Algorithm a :
       {model::Algorithm::kIterative, model::Algorithm::kRecursive,
        model::Algorithm::kTrsm2D, model::Algorithm::kTrsv1D}) {
    SolveOptions opts;
    opts.force_algorithm = true;
    opts.algorithm = a;
    EXPECT_THROW(solve_on(machine, l, b, opts), Error)
        << model::algorithm_name(a);
  }
  // The machine remains usable after every failure.
  const Matrix lgood = la::make_lower_triangular(207, n);
  const SolveResult r = solve_on(machine, lgood, b);
  EXPECT_LT(r.residual, 1e-12);
}

TEST(Integration, IllConditionedStillBackwardStable) {
  // Scale up the off-diagonal mass: the forward error degrades with the
  // condition number but the *residual* (backward stability) stays tiny —
  // the Du Croz-Higham property that justifies selective inversion.
  const index_t n = 48, k = 8;
  Matrix l = la::make_lower_triangular(208, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < i; ++j) l(i, j) *= 40.0;  // heavy off-diagonal
  const Matrix b = la::make_rhs(209, n, k);
  for (const model::Algorithm a :
       {model::Algorithm::kIterative, model::Algorithm::kRecursive}) {
    SolveOptions opts;
    opts.force_algorithm = true;
    opts.algorithm = a;
    const SolveResult r = solve(l, b, 8, opts);
    EXPECT_LT(r.residual, 1e-10) << model::algorithm_name(a);
  }
}

TEST(Integration, IterativeAndRecursiveBitwiseStableEachRun) {
  const index_t n = 20, k = 5;
  const Matrix l = la::make_lower_triangular(210, n);
  const Matrix b = la::make_rhs(211, n, k);
  for (const model::Algorithm a :
       {model::Algorithm::kIterative, model::Algorithm::kRecursive}) {
    SolveOptions opts;
    opts.force_algorithm = true;
    opts.algorithm = a;
    const SolveResult r1 = solve(l, b, 8, opts);
    const SolveResult r2 = solve(l, b, 8, opts);
    EXPECT_TRUE(r1.x.equals(r2.x)) << model::algorithm_name(a);
  }
}

}  // namespace
}  // namespace catrsm::trsm
