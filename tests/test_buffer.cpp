// Tests for sim::Buffer: view aliasing, refcount release, copy-on-write,
// destructive extraction, and the concat adjacency fast path — the
// semantics the zero-copy transport stack depends on.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "sim/buffer.hpp"
#include "sim/slab.hpp"

namespace catrsm::sim {
namespace {

TEST(Buffer, AdoptsVectorWithoutCopy) {
  std::vector<double> v{1.0, 2.0, 3.0};
  const double* storage = v.data();
  Buffer b(std::move(v));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data(), storage);  // same heap block: adoption, not a copy
  EXPECT_EQ(b.use_count(), 1);
}

TEST(Buffer, SlicesAliasTheSlab) {
  Buffer b(std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0});
  Buffer mid = b.slice(1, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_DOUBLE_EQ(mid[0], 1.0);
  EXPECT_DOUBLE_EQ(mid[2], 3.0);
  EXPECT_TRUE(mid.aliases(b));
  EXPECT_EQ(mid.data(), b.data() + 1);  // a view, not a copy
  EXPECT_EQ(b.use_count(), 2);

  Buffer inner = mid.slice(1, 1);  // slicing a slice composes offsets
  EXPECT_DOUBLE_EQ(inner[0], 2.0);
  EXPECT_EQ(inner.data(), b.data() + 2);
  EXPECT_EQ(b.use_count(), 3);
}

TEST(Buffer, RefcountDropsWhenViewsDie) {
  Buffer b(std::vector<double>{1.0, 2.0});
  {
    Buffer copy = b;
    Buffer view = b.slice(0, 1);
    EXPECT_EQ(b.use_count(), 3);
  }
  EXPECT_EQ(b.use_count(), 1);
  b = Buffer{};
  EXPECT_EQ(b.use_count(), 0);  // slab released
}

TEST(Buffer, CopyOnWriteLeavesOtherViewsUntouched) {
  Buffer a(std::vector<double>{1.0, 2.0, 3.0});
  Buffer shared = a;
  double* w = shared.mutable_data();
  w[0] = 99.0;
  EXPECT_DOUBLE_EQ(shared[0], 99.0);
  EXPECT_DOUBLE_EQ(a[0], 1.0);          // original view unchanged
  EXPECT_FALSE(shared.aliases(a));      // writer reseated onto a private slab
  EXPECT_EQ(a.use_count(), 1);
}

TEST(Buffer, MutatesInPlaceWhenUnique) {
  Buffer a(std::vector<double>{1.0, 2.0});
  const double* before = a.data();
  a.mutable_data()[1] = 7.0;
  EXPECT_EQ(a.data(), before);  // sole owner: no copy
  EXPECT_DOUBLE_EQ(a[1], 7.0);
}

TEST(Buffer, TakeMovesWhenUniqueCopiesWhenShared) {
  Buffer unique(std::vector<double>{5.0, 6.0});
  const double* storage = unique.data();
  std::vector<double> moved = std::move(unique).take();
  EXPECT_EQ(moved.data(), storage);  // the slab's vector moved out

  Buffer shared(std::vector<double>{7.0, 8.0});
  Buffer other = shared;
  std::vector<double> copied = std::move(shared).take();
  EXPECT_EQ(copied, (std::vector<double>{7.0, 8.0}));
  EXPECT_DOUBLE_EQ(other[0], 7.0);  // surviving view still intact
}

TEST(Buffer, ConcatAdjacentSlicesIsZeroCopy) {
  Buffer b(std::vector<double>{0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  std::vector<Buffer> parts{b.slice(0, 2), b.slice(2, 3)};
  Buffer joined = concat(parts);
  EXPECT_EQ(joined.size(), 5u);
  EXPECT_TRUE(joined.aliases(b));      // adjacent views widen in place
  EXPECT_EQ(joined.data(), b.data());
}

TEST(Buffer, ConcatNonAdjacentPartsPacks) {
  Buffer b(std::vector<double>{0.0, 1.0, 2.0, 3.0});
  std::vector<Buffer> parts{b.slice(2, 2), b.slice(0, 2)};  // out of order
  Buffer joined = concat(parts);
  ASSERT_EQ(joined.size(), 4u);
  EXPECT_FALSE(joined.aliases(b));
  EXPECT_DOUBLE_EQ(joined[0], 2.0);
  EXPECT_DOUBLE_EQ(joined[3], 1.0);
}

TEST(Buffer, ConcatSkipsEmptyPartsAndForwardsSingletons) {
  Buffer b(std::vector<double>{1.0, 2.0});
  std::vector<Buffer> parts{Buffer{}, b, Buffer{}};
  Buffer joined = concat(parts);
  EXPECT_TRUE(joined.aliases(b));
  EXPECT_EQ(joined.data(), b.data());
  EXPECT_EQ(concat(std::vector<Buffer>{}).size(), 0u);
}

TEST(Buffer, UninitSlabPoolRecyclesSameStorage) {
  clear_slab_pool();
  const double* storage = nullptr;
  {
    Buffer a = Buffer::uninit(1000);
    storage = a.data();
    ASSERT_NE(storage, nullptr);
  }  // last view dropped: the slab re-enters the pool
  // Same power-of-two size class (1024 doubles): the freelist hands the
  // identical storage back instead of allocating.
  const SlabPoolStats before = slab_pool_stats();
  Buffer b = Buffer::uninit(900);
  EXPECT_EQ(b.data(), storage);
  EXPECT_EQ(slab_pool_stats().hits, before.hits + 1);
}

TEST(Buffer, SlabPoolDisabledAllocatesFresh) {
  clear_slab_pool();
  const double* storage = nullptr;
  {
    Buffer a = Buffer::uninit(512);
    storage = a.data();
  }
  set_slab_pool_enabled(false);
  {
    // With recycling off the retained slab must not be handed out...
    Buffer b = Buffer::uninit(512);
    EXPECT_NE(b.data(), storage);
  }
  set_slab_pool_enabled(true);
  // ...but it is still waiting in the pool once recycling resumes.
  Buffer c = Buffer::uninit(512);
  EXPECT_EQ(c.data(), storage);
}

TEST(Buffer, PoisonFillExposesUnwrittenWords) {
  // Under poison mode a recycled slab arrives NaN-filled, so any consumer
  // that reads a word it never wrote propagates NaN instead of silently
  // reusing stale message bytes. A fully-written payload is NaN-free.
  clear_slab_pool();
  {
    Buffer dirty = Buffer::uninit(256);
    double* w = dirty.mutable_data();
    for (std::size_t i = 0; i < dirty.size(); ++i) w[i] = 1.0;
  }  // recycled: stale 1.0s now sit in the pool
  set_slab_poison(true);
  Buffer a = Buffer::uninit(256);
  EXPECT_TRUE(std::isnan(a[0]));    // the stale bytes were overwritten
  EXPECT_TRUE(std::isnan(a[255]));  // ... out to the full view
  double* w = a.mutable_data();
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = 2.0;
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], 2.0);

  // concat's packing path writes every destination word.
  Buffer src(std::vector<double>{0.0, 1.0, 2.0, 3.0});
  std::vector<Buffer> parts{src.slice(2, 2), src.slice(0, 2)};
  Buffer joined = concat(parts);
  for (std::size_t i = 0; i < joined.size(); ++i)
    ASSERT_FALSE(std::isnan(joined[i]));
  set_slab_poison(false);
}

TEST(Buffer, TakeCopiesFromPooledSlabWithoutDisturbingIt) {
  Buffer a = Buffer::uninit(8);
  double* w = a.mutable_data();
  for (std::size_t i = 0; i < a.size(); ++i) w[i] = static_cast<double>(i);
  Buffer alias = a;
  std::vector<double> out = std::move(a).take();  // pooled: must copy
  ASSERT_EQ(out.size(), 8u);
  EXPECT_DOUBLE_EQ(out[3], 3.0);
  EXPECT_DOUBLE_EQ(alias[3], 3.0);  // surviving view untouched
}

TEST(Buffer, SpanAndVectorInterop) {
  std::vector<double> src{1.0, 2.0, 3.0};
  Buffer from_span{std::span<const double>(src)};
  EXPECT_NE(from_span.data(), src.data());  // spans copy at the boundary
  EXPECT_EQ(from_span.to_vector(), src);
  std::span<const double> back = from_span;  // implicit view conversion
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(back.data(), from_span.data());
}

}  // namespace
}  // namespace catrsm::sim
