// Property-based tests: invariants that must hold across randomized
// configurations — conservation through redistribution chains, cost
// accounting symmetries, linearity of the solvers, and model consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "coll/collectives.hpp"
#include "dist/redistribute.hpp"
#include "la/generate.hpp"
#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "la/trsm.hpp"
#include "mm/mm3d.hpp"
#include "model/costs.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "trsm/solver.hpp"

namespace catrsm {
namespace {

using dist::BlockCyclicDist;
using dist::DistMatrix;
using dist::Face2D;
using la::index_t;
using la::Matrix;
using sim::Comm;
using sim::Machine;
using sim::Rank;
using sim::RunStats;

// ---------------------------------------------------------------------------
// Redistribution chains: any random sequence of layouts preserves the
// matrix exactly (values are only moved, never transformed).

class RedistChain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RedistChain, RandomLayoutWalkPreservesMatrix) {
  Rng rng(GetParam());
  const int p = 12;
  const index_t n = 1 + rng.uniform_int(5, 30);
  const index_t k = 1 + rng.uniform_int(1, 25);
  const Matrix ref = la::make_dense(GetParam(), n, k);

  // Pre-generate the random layout walk so every rank builds the same one.
  struct Step {
    int pr, pc;
    index_t br, bc;
  };
  std::vector<Step> steps;
  for (int s = 0; s < 5; ++s) {
    // Random factorization of p and random block sizes.
    const std::vector<std::pair<int, int>> facs = {
        {1, 12}, {2, 6}, {3, 4}, {4, 3}, {6, 2}, {12, 1}};
    const auto [pr, pc] = facs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long long>(facs.size()) - 1))];
    steps.push_back({pr, pc, 1 + rng.uniform_int(0, 4),
                     1 + rng.uniform_int(0, 4)});
  }

  Machine m(p);
  m.run([&](Rank& r) {
    Comm world = Comm::world(r);
    Face2D face0(world, 3, 4);
    auto d0 = dist::cyclic_on(face0, n, k);
    DistMatrix cur(d0, r.id());
    cur.fill_from_global(ref);
    for (const Step& s : steps) {
      Face2D face(world, s.pr, s.pc);
      auto d = std::make_shared<BlockCyclicDist>(face, n, k, s.br, s.bc);
      cur = dist::redistribute(cur, d, world);
    }
    EXPECT_LT(la::max_abs_diff(collect(cur, world), ref), 1e-15);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedistChain,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Cost accounting invariants.

TEST(CostAccounting, WordsConservedPointToPoint) {
  // For pure one-sided traffic, total words sent == total words received,
  // so total_words is exactly twice the wire volume.
  Machine m(4);
  RunStats stats = m.run([](Rank& r) {
    if (r.id() == 0) {
      for (int d = 1; d < 4; ++d)
        r.send(d, std::vector<double>(static_cast<std::size_t>(d * 10), 1.0),
               5);
    } else {
      (void)r.recv(0, 5);
    }
  });
  EXPECT_DOUBLE_EQ(stats.total_words(), 2.0 * (10 + 20 + 30));
}

TEST(CostAccounting, CriticalTimeAtLeastAnyRankTime) {
  Machine m(8);
  RunStats stats = m.run([](Rank& r) {
    r.charge_flops(100.0 * (r.id() + 1));
    Comm world = Comm::world(r);
    coll::Buf v{1.0};
    (void)coll::allreduce(world, v);
  });
  const sim::MachineParams mp;
  for (const auto& c : stats.per_rank) {
    // vtime >= gamma * F for each rank; the critical path dominates all.
    EXPECT_GE(stats.critical_time + 1e-15, mp.gamma * c.flops);
  }
  EXPECT_GT(stats.critical_time, 0.0);
}

TEST(CostAccounting, FlopChargesMatchAlgebraicCounts) {
  // The solve's charged flops must be within a small factor of the
  // sequential operation count n^2 k (multiply+add), independent of p.
  const index_t n = 40, k = 10;
  const Matrix l = la::make_lower_triangular(77, n);
  const Matrix b = la::make_rhs(78, n, k);
  const double sequential = static_cast<double>(n) * n * k;
  for (int p : {1, 4, 16}) {
    trsm::SolveOptions opts;
    opts.force_algorithm = true;
    opts.algorithm = model::Algorithm::kRecursive;
    const trsm::SolveResult r = trsm::solve(l, b, p, opts);
    double total_flops = 0.0;
    for (const auto& c : r.stats.per_rank) total_flops += c.flops;
    EXPECT_GT(total_flops, 0.5 * sequential);
    EXPECT_LT(total_flops, 8.0 * sequential) << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Solver linearity: solve(L, a*B1 + b*B2) == a*solve(L,B1) + b*solve(L,B2).

TEST(SolverProperties, LinearityInRhs) {
  const index_t n = 24, k = 4;
  const Matrix l = la::make_lower_triangular(91, n);
  const Matrix b1 = la::make_rhs(92, n, k);
  const Matrix b2 = la::make_rhs(93, n, k);
  Matrix combo = b1;
  combo.scale(2.5);
  Matrix b2s = b2;
  b2s.scale(-1.25);
  combo.add(b2s);

  const Matrix x1 = trsm::solve(l, b1, 8).x;
  const Matrix x2 = trsm::solve(l, b2, 8).x;
  const Matrix xc = trsm::solve(l, combo, 8).x;

  Matrix expect = x1;
  expect.scale(2.5);
  Matrix x2s = x2;
  x2s.scale(-1.25);
  expect.add(x2s);
  EXPECT_LT(la::max_abs_diff(xc, expect), 1e-10);
}

TEST(SolverProperties, IdentityRhsGivesInverseColumns) {
  const index_t n = 16;
  const Matrix l = la::make_lower_triangular(94, n);
  const Matrix x = trsm::solve(l, Matrix::identity(n), 4).x;
  EXPECT_LT(la::inv_residual(l, x), 1e-12);
}

TEST(SolverProperties, SolutionInvariantUnderP) {
  // The *answer* must not depend on the machine size (only the costs do).
  const index_t n = 30, k = 6;
  const Matrix l = la::make_lower_triangular(95, n);
  const Matrix b = la::make_rhs(96, n, k);
  const Matrix ref = la::solve_lower(l, b);
  for (int p : {1, 2, 4, 9, 16}) {
    const Matrix x = trsm::solve(l, b, p).x;
    EXPECT_LT(la::max_abs_diff(x, ref), 1e-9) << "p=" << p;
  }
}

// ---------------------------------------------------------------------------
// Model consistency properties.

TEST(ModelProperties, CostsMonotoneInProblemSize) {
  for (double p : {64.0, 1024.0}) {
    double prev_w = 0.0;
    for (double n : {1024.0, 4096.0, 16384.0, 65536.0}) {
      const sim::Cost c = model::rec_trsm_cost(n, n, p);
      EXPECT_GT(c.words, prev_w);
      prev_w = c.words;
    }
  }
}

TEST(ModelProperties, FlopsScaleInverselyWithP) {
  const double n = 1 << 14, k = 1 << 10;
  const double f64 = model::rec_trsm_cost(n, k, 64).flops;
  const double f256 = model::rec_trsm_cost(n, k, 256).flops;
  EXPECT_NEAR(f64 / f256, 4.0, 1e-9);
}

TEST(ModelProperties, TuningContinuousAcrossRegimeBoundaries) {
  // Crossing a regime boundary must not produce wild discontinuities in
  // the predicted total time (factor < 4 across the seam).
  const double p = 4096, k = 1024;
  const sim::MachineParams mp;
  const double just_3d = 4.0 * k * std::sqrt(p) * 0.99;
  const double just_2d = 4.0 * k * std::sqrt(p) * 1.01;
  const double t3 = model::it_inv_trsm_cost(just_3d, k, p).time(mp);
  const double t2 = model::it_inv_trsm_cost(just_2d, k, p).time(mp);
  EXPECT_LT(std::max(t3, t2) / std::min(t3, t2), 4.0);
}

TEST(ModelProperties, MMGridChooserNeverBeatenByPaperChoice) {
  // The brute-force chooser must be at least as good (in modeled words)
  // as the paper's closed-form p1 = p^{1/3} (n/k)^{1/3} suggestion,
  // whenever the latter is realizable.
  for (index_t n : {256, 4096}) {
    for (index_t k : {16, 256, 4096}) {
      for (int p : {64, 512}) {
        const mm::MMGrid g = mm::choose_mm_grid(n, n, k, p);
        const double chosen = mm::mm3d_model_words(n, n, k, g.p1, g.p2);
        for (int p1 = 1; p1 * p1 <= p; ++p1) {
          if (p % (p1 * p1) != 0) continue;
          const double w = mm::mm3d_model_words(n, n, k, p1, p / (p1 * p1));
          EXPECT_LE(chosen, w + 1e-9);
        }
      }
    }
  }
}

}  // namespace
}  // namespace catrsm
